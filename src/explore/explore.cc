#include "explore/explore.h"

#include <bit>
#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "core/analysis.h"
#include "ganalysis/bounds.h"
#include "hardware/energy_model.h"
#include "hardware/sram_model.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "robust/robust_scheduler.h"
#include "schedulers/belady.h"
#include "schedulers/brute_force.h"
#include "util/thread_pool.h"

namespace wrbpg {
namespace {

// Everything the pricing pass needs from one budget's solve. Rows are
// written by index from pool tasks and folded in index order, so the
// result is independent of which worker solved which budget.
struct SolveRow {
  bool feasible = false;
  Weight cost = kInfiniteCost;
  Weight lower_bound = 0;
  Weight gap = kInfiniteCost;
  Termination termination = Termination::kComplete;
  Weight bits_loaded = 0;
  Weight bits_stored = 0;
  double elapsed_ms = 0;
};

SolveRow SolveBudget(const Graph& graph, Weight budget,
                     const ExploreOptions& options) {
  const auto start = std::chrono::steady_clock::now();
  ScheduleResult result;
  if (options.scheduler == ExploreScheduler::kBranchAndBound) {
    BruteForceOptions bf;
    bf.engine = SearchEngine::kBranchAndBound;
    bf.max_states = options.max_states;
    // Grid parallelism lives at the budget level; each solve stays
    // sequential so N outer workers never oversubscribe the machine.
    bf.threads = 1;
    bf.root_lower_bound = BestCertifiedBound(graph, budget);
    bf.cancel = options.cancel;
    result = BruteForceScheduler(graph).Run(budget, bf);
  } else {
    RobustOptions ro;
    ro.deadline_ms = options.deadline_ms;
    ro.threads = 1;
    result = RobustScheduler(graph).Run(budget, ro).result;
  }

  SolveRow row;
  row.elapsed_ms = std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - start)
                       .count();
  row.feasible = result.feasible;
  if (!result.feasible) return row;
  row.cost = result.cost;
  row.lower_bound = result.lower_bound;
  row.gap = result.optimality_gap;
  row.termination = result.termination;
  for (const Move& move : result.schedule) {
    if (move.type == MoveType::kLoad) {
      row.bits_loaded += graph.weight(move.node);
    } else if (move.type == MoveType::kStore) {
      row.bits_stored += graph.weight(move.node);
    }
  }
  return row;
}

// Derived band cap: the smallest scanned budget where the Belady heuristic
// already achieves the Prop 2.4 lower bound — past it, more fast memory
// cannot reduce I/O, only add area and leakage — plus the caller's slack.
Weight DeriveBandCap(const Graph& graph, Weight lo,
                     const ExploreOptions& options) {
  BeladyScheduler belady(graph);
  MinMemoryOptions mm;
  mm.lo = lo;
  mm.hi = graph.total_weight();
  mm.step = options.budget_step;
  mm.monotone = false;  // heuristic costs need not be monotone
  mm.cancel = options.cancel;
  mm.graph = &graph;
  const std::optional<Weight> min_memory = FindMinimumFastMemory(
      [&belady](Weight budget) { return belady.CostOnly(budget); },
      AlgorithmicLowerBound(graph), mm);
  // total_weight always achieves the bound, so nullopt only happens on a
  // degenerate scan band or cancellation; the fallback keeps the band sane.
  const Weight cap = min_memory.value_or(graph.total_weight());
  return cap + options.band_slack;
}

std::uint64_t Fnv1a(std::uint64_t hash, std::uint64_t value) {
  for (int byte = 0; byte < 8; ++byte) {
    hash ^= (value >> (8 * byte)) & 0xffu;
    hash *= 1099511628211ull;
  }
  return hash;
}

}  // namespace

const char* ToString(ExploreScheduler scheduler) {
  switch (scheduler) {
    case ExploreScheduler::kBranchAndBound: return "bb";
    case ExploreScheduler::kRobustChain: return "robust";
  }
  return "unknown";
}

std::optional<ExploreScheduler> ExploreSchedulerFromString(
    std::string_view name) {
  if (name == "bb") return ExploreScheduler::kBranchAndBound;
  if (name == "robust") return ExploreScheduler::kRobustChain;
  return std::nullopt;
}

bool Dominates(const ExplorePoint& a, const ExplorePoint& b) {
  if (a.area_lambda2 > b.area_lambda2 || a.leakage_mw > b.leakage_mw ||
      a.energy_nj > b.energy_nj || a.io_cost > b.io_cost) {
    return false;
  }
  return a.area_lambda2 < b.area_lambda2 || a.leakage_mw < b.leakage_mw ||
         a.energy_nj < b.energy_nj || a.io_cost < b.io_cost;
}

std::vector<std::size_t> ParetoFrontier(
    const std::vector<ExplorePoint>& points) {
  std::vector<std::size_t> frontier;
  for (std::size_t i = 0; i < points.size(); ++i) {
    bool dominated = false;
    for (std::size_t j = 0; j < points.size(); ++j) {
      if (j != i && Dominates(points[j], points[i])) {
        dominated = true;
        break;
      }
    }
    if (!dominated) frontier.push_back(i);
  }
  return frontier;
}

bool VerifyFrontier(const std::vector<ExplorePoint>& points,
                    const std::vector<std::size_t>& frontier,
                    std::string* error) {
  auto fail = [error](const std::string& why) {
    if (error != nullptr) *error = why;
    return false;
  };
  for (std::size_t k = 0; k < frontier.size(); ++k) {
    if (frontier[k] >= points.size()) {
      return fail("frontier index " + std::to_string(frontier[k]) +
                  " out of range");
    }
    if (k > 0 && frontier[k] <= frontier[k - 1]) {
      return fail("frontier indices not strictly ascending at position " +
                  std::to_string(k));
    }
  }
  const std::vector<std::size_t> recomputed = ParetoFrontier(points);
  if (recomputed != frontier) {
    // Name one witness so the rejection is actionable.
    for (std::size_t idx : frontier) {
      for (std::size_t j = 0; j < points.size(); ++j) {
        if (j != idx && Dominates(points[j], points[idx])) {
          return fail("claimed frontier point " + std::to_string(idx) +
                      " is dominated by point " + std::to_string(j));
        }
      }
    }
    return fail("claimed frontier omits a non-dominated point");
  }
  std::size_t next = 0;
  for (std::size_t i = 0; i < points.size(); ++i) {
    const bool claimed = next < frontier.size() && frontier[next] == i;
    if (claimed) ++next;
    if (points[i].on_frontier != claimed) {
      return fail("on_frontier flag of point " + std::to_string(i) +
                  " disagrees with the frontier indices");
    }
  }
  return true;
}

std::uint64_t FrontierHash(const ExploreResult& result) {
  std::uint64_t hash = 1469598103934665603ull;  // FNV offset basis
  for (std::size_t idx : result.frontier) {
    const ExplorePoint& p = result.points[idx];
    hash = Fnv1a(hash, static_cast<std::uint64_t>(p.budget));
    hash = Fnv1a(hash, static_cast<std::uint64_t>(p.capacity_bits));
    hash = Fnv1a(hash, static_cast<std::uint64_t>(p.word_bits));
    hash = Fnv1a(hash, static_cast<std::uint64_t>(p.io_cost));
    hash = Fnv1a(hash, static_cast<std::uint64_t>(p.lower_bound));
    hash = Fnv1a(hash, static_cast<std::uint64_t>(p.gap));
    hash = Fnv1a(hash, static_cast<std::uint64_t>(p.bits_loaded));
    hash = Fnv1a(hash, static_cast<std::uint64_t>(p.bits_stored));
    hash = Fnv1a(hash, std::bit_cast<std::uint64_t>(p.area_lambda2));
    hash = Fnv1a(hash, std::bit_cast<std::uint64_t>(p.leakage_mw));
    hash = Fnv1a(hash, std::bit_cast<std::uint64_t>(p.energy_nj));
  }
  return hash;
}

ExploreResult Explore(const Graph& graph, const ExploreOptions& options) {
  static const obs::Counter budgets_counter("explore.budgets");
  static const obs::Counter points_counter("explore.points");
  static const obs::Counter invalid_counter("explore.invalid_points");
  static const obs::Counter infeasible_counter("explore.infeasible_budgets");
  static const obs::Gauge frontier_gauge("explore.frontier_size");
  obs::ScopedSpan span("explore");

  ExploreResult result;
  if (graph.num_nodes() == 0) {
    result.error = "graph is empty";
    return result;
  }
  if (options.budget_step <= 0) {
    result.error = "budget_step must be positive";
    return result;
  }
  if (options.word_bits.empty()) {
    result.error = "word_bits must name at least one width";
    return result;
  }

  {
    obs::ScopedSpan band_span("explore.derive-band");
    result.budget_lo =
        options.budget_lo > 0 ? options.budget_lo : MinValidBudget(graph);
    result.budget_hi = options.budget_hi > 0
                           ? options.budget_hi
                           : DeriveBandCap(graph, result.budget_lo, options);
    result.budget_step = options.budget_step;
  }
  if (result.budget_hi < result.budget_lo) {
    result.error = "budget band is empty: hi " +
                   std::to_string(result.budget_hi) + " < lo " +
                   std::to_string(result.budget_lo);
    return result;
  }
  if (options.cancel != nullptr && options.cancel->cancelled()) {
    result.error = "cancelled";
    return result;
  }

  std::vector<Weight> budgets;
  for (Weight b = result.budget_lo; b <= result.budget_hi;
       b += result.budget_step) {
    budgets.push_back(b);
  }
  result.budgets_scanned = budgets.size();
  budgets_counter.Add(budgets.size());

  // Solve every budget, embarrassingly parallel, each task writing only
  // its own row (the §8 determinism contract: fold by index afterwards).
  std::vector<SolveRow> rows(budgets.size());
  const std::size_t threads = ResolveThreadCount(options.threads);
  if (threads <= 1 || budgets.size() <= 1) {
    for (std::size_t i = 0; i < budgets.size(); ++i) {
      if (options.cancel != nullptr && options.cancel->cancelled()) break;
      rows[i] = SolveBudget(graph, budgets[i], options);
    }
  } else {
    ThreadPool pool(threads);
    ParallelFor(pool, 0, static_cast<std::int64_t>(budgets.size()),
                [&](std::int64_t i) {
                  if (options.cancel != nullptr &&
                      options.cancel->cancelled()) {
                    return;
                  }
                  rows[static_cast<std::size_t>(i)] =
                      SolveBudget(graph, budgets[static_cast<std::size_t>(i)],
                                  options);
                });
  }
  if (options.cancel != nullptr && options.cancel->cancelled()) {
    result.error = "cancelled";
    return result;
  }
  for (const SolveRow& row : rows) {
    obs::RecordSpan("explore.solve", row.elapsed_ms);
  }

  // Price the grid in fixed budget-major, word-width-minor order.
  {
    obs::ScopedSpan price_span("explore.price");
    for (std::size_t i = 0; i < budgets.size(); ++i) {
      const SolveRow& row = rows[i];
      if (!row.feasible) {
        ++result.infeasible_budgets;
        infeasible_counter.Add();
        continue;
      }
      const Weight capacity = PowerOfTwoCapacity(budgets[i]);
      for (Weight word : options.word_bits) {
        const SramSynthesisResult synth = TrySynthesizeSram(capacity, word);
        if (!synth.ok()) {
          ++result.invalid_points;
          invalid_counter.Add();
          continue;
        }
        const EnergyReport energy = EstimateScheduleEnergy(
            synth.macro, row.bits_loaded, row.bits_stored,
            options.duty_cycle);
        ExplorePoint point;
        point.budget = budgets[i];
        point.capacity_bits = capacity;
        point.word_bits = word;
        point.io_cost = row.cost;
        point.lower_bound = row.lower_bound;
        point.gap = row.gap;
        point.termination = row.termination;
        point.bits_loaded = row.bits_loaded;
        point.bits_stored = row.bits_stored;
        point.area_lambda2 = synth.macro.area_lambda2;
        point.leakage_mw = synth.macro.leakage_mw;
        point.energy_nj = energy.total_energy_nj;
        result.points.push_back(point);
      }
    }
  }
  points_counter.Add(result.points.size());

  {
    obs::ScopedSpan dominance_span("explore.dominance");
    result.frontier = ParetoFrontier(result.points);
    for (std::size_t idx : result.frontier) {
      result.points[idx].on_frontier = true;
    }
    result.dominated = result.points.size() - result.frontier.size();
  }
  frontier_gauge.Max(result.frontier.size());

  result.ok = true;
  return result;
}

}  // namespace wrbpg
