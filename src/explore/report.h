// Human- and machine-facing renderings of an exploration (DESIGN.md §15).
//
// Three views of the same ExploreResult, all byte-stable for identical
// inputs (the Json writer keeps insertion order; the table and plot are
// pure folds over the point vector):
//
//   RenderExploreTable   aligned text table, one row per priced point,
//                        frontier rows marked — the CLI's default output.
//   RenderFrontierPlot   ASCII area-vs-energy scatter in the trace-render
//                        style (core/trace.h): '*' frontier, '.' dominated.
//   ExploreToJson        the wrbpg-explore-v1 document (docs/FORMATS.md)
//                        for --json and the explore-smoke CI check.
#pragma once

#include <string>

#include "explore/explore.h"
#include "obs/json.h"

namespace wrbpg {

std::string RenderExploreTable(const ExploreResult& result);

// Fixed-size ASCII scatter of area (x) vs total energy (y). Degenerate
// inputs (no points, or all points coincident) render a one-line note
// instead of a chart.
std::string RenderFrontierPlot(const ExploreResult& result, int width = 64,
                               int height = 16);

// `instance` is the graph spec or file the caller explored; `scheduler`
// labels the pricing engine (ToString(ExploreScheduler)).
obs::Json ExploreToJson(const std::string& instance,
                        const std::string& scheduler,
                        const ExploreResult& result);

}  // namespace wrbpg
