// Deterministic, seedable PRNG used by generators and property tests.
//
// xoshiro256** (Blackman & Vigna) seeded through splitmix64. We carry our own
// generator rather than <random> engines so that random graphs and weight
// assignments are bit-identical across platforms and standard libraries —
// property-test failures must be reproducible from a seed alone.
#pragma once

#include <array>
#include <cstdint>

namespace wrbpg {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) noexcept;

  // Uniform 64-bit value.
  std::uint64_t Next() noexcept;

  // Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t UniformInt(std::int64_t lo, std::int64_t hi) noexcept;

  // Uniform double in [0, 1).
  double UniformDouble() noexcept;

  // Bernoulli trial with probability p of returning true.
  bool Bernoulli(double p) noexcept;

 private:
  std::array<std::uint64_t, 4> state_;
};

}  // namespace wrbpg
