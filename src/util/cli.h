// Tiny command-line flag parser for examples/ and bench/ binaries.
//
// Supports `--name=value`, `--name value`, and boolean `--name`. Unknown
// flags are reported; positional arguments are collected in order.
//
// Malformed input is never silently coerced: duplicate flags are rejected
// at parse time, and the typed getters record an error (retrievable via
// error()) when a value is empty, non-numeric, has trailing junk, or
// overflows the target type — returning the fallback in that case.
// Callers should check error() after the getters they care about (or once
// after all of them; errors accumulate, first one wins).
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace wrbpg {

// One verb's accepted flag names, for CliArgs::CheckVerbFlags.
struct VerbFlags {
  std::string verb;
  std::vector<std::string> flags;
};

class CliArgs {
 public:
  // Parses argv; on malformed input stores an error retrievable via error().
  CliArgs(int argc, const char* const* argv);

  bool has(const std::string& name) const;
  std::string GetString(const std::string& name,
                        const std::string& fallback) const;
  std::int64_t GetInt(const std::string& name, std::int64_t fallback) const;
  double GetDouble(const std::string& name, double fallback) const;
  bool GetBool(const std::string& name, bool fallback) const;

  const std::vector<std::string>& positional() const { return positional_; }
  const std::string& error() const { return error_; }

  // Reads `--threads` and installs it as the process-wide search thread
  // default (SetDefaultSearchThreads), so every engine whose options leave
  // threads at 0 picks it up. `--threads 0` or an absent flag selects the
  // hardware concurrency... unless WRBPG_THREADS is set, which seeded the
  // default at startup and is only overridden by an explicit flag.
  // Negative values record an error. Returns the installed count.
  std::size_t ApplyThreadsFlag() const;

  // Validates every parsed flag against the verb table: flags listed for
  // `verb` (or in `global_flags`, accepted everywhere) pass. A flag that
  // belongs to a DIFFERENT verb records an error naming the owning
  // verb(s) — "flag '--engine' belongs to verb 'schedule', not 'info'" —
  // so the message teaches the fix; a flag no verb owns records a plain
  // unknown-flag error. First offender wins (map order, so the
  // lexicographically smallest flag name); returns false when any flag
  // failed.
  bool CheckVerbFlags(const std::string& verb,
                      const std::vector<VerbFlags>& table,
                      const std::vector<std::string>& global_flags = {}) const;

 private:
  void RecordError(const std::string& message) const;

  std::map<std::string, std::string> flags_;
  std::vector<std::string> positional_;
  // Getters are logically const but must be able to report bad values.
  mutable std::string error_;
};

}  // namespace wrbpg
