#include "util/csv.h"

#include <cassert>
#include <charconv>

namespace wrbpg {

void CsvWriter::WriteField(std::string_view field, bool first) {
  if (!first) out_ << ',';
  const bool needs_quote =
      field.find_first_of(",\"\n\r") != std::string_view::npos;
  if (!needs_quote) {
    out_ << field;
    return;
  }
  out_ << '"';
  for (char c : field) {
    if (c == '"') out_ << '"';
    out_ << c;
  }
  out_ << '"';
}

void CsvWriter::WriteRow(const std::vector<std::string>& fields) {
  bool first = true;
  for (const auto& f : fields) {
    WriteField(f, first);
    first = false;
  }
  out_ << '\n';
}

void CsvWriter::WriteRow(std::initializer_list<std::string_view> fields) {
  bool first = true;
  for (auto f : fields) {
    WriteField(f, first);
    first = false;
  }
  out_ << '\n';
}

std::string CsvWriter::Field(std::int64_t v) { return std::to_string(v); }

std::string CsvWriter::Field(double v) {
  // Shortest round-trip formatting (std::to_chars): parsing the field back
  // recovers the exact double. The previous ostream default (6 significant
  // digits) silently corrupted benchmark ratios and speedups.
  char buf[32];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  assert(ec == std::errc());
  (void)ec;
  return std::string(buf, ptr);
}

}  // namespace wrbpg
