#include "util/table.h"

#include <algorithm>
#include <cassert>
#include <iomanip>

namespace wrbpg {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TextTable::AddRow(std::vector<std::string> row) {
  assert(row.size() == header_.size());
  rows_.push_back(std::move(row));
}

void TextTable::Print(std::ostream& out) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto rule = [&] {
    out << '+';
    for (auto w : widths) out << std::string(w + 2, '-') << '+';
    out << '\n';
  };
  auto line = [&](const std::vector<std::string>& row) {
    out << '|';
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << ' ' << std::left << std::setw(static_cast<int>(widths[c]))
          << row[c] << " |";
    }
    out << '\n';
  };
  rule();
  line(header_);
  rule();
  for (const auto& row : rows_) line(row);
  rule();
}

}  // namespace wrbpg
