// Sharded byte-budget LRU cache — the storage substrate of the schedule
// cache in src/service/ (DESIGN.md §13).
//
// The cache is split into power-of-two shards, each holding its own
// mutex, recency list, and slice of the byte budget, so concurrent
// lookups of different keys never contend. Values are handed out as
// shared_ptr<const V>: a Get that races an eviction still holds a live
// snapshot, and entries are never copied on the serve path.
//
// Eviction is by bytes, not entry count: each Put carries the entry's
// accounted size, and the owning shard evicts least-recently-used
// entries until its slice (total budget / shards) fits. An entry larger
// than a whole shard slice is refused outright (counted in
// stats().rejected) — admitting it would evict the entire shard for a
// value that can never be retained.
//
// Thread safety: every public method is safe to call concurrently. The
// per-shard counters are folded under each shard's mutex, so stats() is
// a consistent-per-shard (not globally atomic) snapshot.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

namespace wrbpg {

template <typename Key, typename Value, typename Hash = std::hash<Key>>
class ShardedLruCache {
 public:
  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t insertions = 0;
    std::uint64_t evictions = 0;
    std::uint64_t rejected = 0;  // Puts larger than a shard slice
    std::size_t entries = 0;
    std::size_t bytes = 0;
    std::size_t byte_budget = 0;
  };

  // `byte_budget` bounds the sum of accounted entry sizes across all
  // shards; `shards` is rounded up to a power of two (min 1).
  explicit ShardedLruCache(std::size_t byte_budget, std::size_t shards = 16)
      : byte_budget_(byte_budget) {
    std::size_t n = 1;
    while (n < shards) n <<= 1;
    shards_.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      shards_.push_back(std::make_unique<Shard>());
    }
    shard_budget_ = byte_budget / n;
  }

  // Returns the cached value and refreshes its recency, or nullptr.
  std::shared_ptr<const Value> Get(const Key& key) {
    Shard& shard = ShardFor(key);
    const std::scoped_lock lock(shard.mu);
    const auto it = shard.index.find(key);
    if (it == shard.index.end()) {
      ++shard.misses;
      return nullptr;
    }
    // Move to the front of the recency list (most recently used).
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    ++shard.hits;
    return it->second->value;
  }

  // Inserts (or replaces) `key`, accounting `bytes` against the owning
  // shard's slice and evicting LRU entries until it fits. Returns false
  // when the entry alone exceeds the slice and was refused.
  bool Put(const Key& key, std::shared_ptr<const Value> value,
           std::size_t bytes) {
    Shard& shard = ShardFor(key);
    const std::scoped_lock lock(shard.mu);
    if (bytes > shard_budget_) {
      ++shard.rejected;
      return false;
    }
    const auto it = shard.index.find(key);
    if (it != shard.index.end()) {
      shard.bytes -= it->second->bytes;
      shard.lru.erase(it->second);
      shard.index.erase(it);
    }
    while (shard.bytes + bytes > shard_budget_ && !shard.lru.empty()) {
      const Entry& victim = shard.lru.back();
      shard.bytes -= victim.bytes;
      shard.index.erase(victim.key);
      shard.lru.pop_back();
      ++shard.evictions;
    }
    shard.lru.push_front(Entry{key, std::move(value), bytes});
    shard.index.emplace(key, shard.lru.begin());
    shard.bytes += bytes;
    ++shard.insertions;
    return true;
  }

  // Drops every entry (stats counters are preserved).
  void Clear() {
    for (const auto& shard : shards_) {
      const std::scoped_lock lock(shard->mu);
      shard->lru.clear();
      shard->index.clear();
      shard->bytes = 0;
    }
  }

  Stats stats() const {
    Stats out;
    out.byte_budget = byte_budget_;
    for (const auto& shard : shards_) {
      const std::scoped_lock lock(shard->mu);
      out.hits += shard->hits;
      out.misses += shard->misses;
      out.insertions += shard->insertions;
      out.evictions += shard->evictions;
      out.rejected += shard->rejected;
      out.entries += shard->index.size();
      out.bytes += shard->bytes;
    }
    return out;
  }

  std::size_t num_shards() const { return shards_.size(); }

 private:
  struct Entry {
    Key key;
    std::shared_ptr<const Value> value;
    std::size_t bytes = 0;
  };

  struct Shard {
    mutable std::mutex mu;
    std::list<Entry> lru;  // front = most recently used
    std::unordered_map<Key, typename std::list<Entry>::iterator, Hash> index;
    std::size_t bytes = 0;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t insertions = 0;
    std::uint64_t evictions = 0;
    std::uint64_t rejected = 0;
  };

  Shard& ShardFor(const Key& key) {
    // Finalizer mix so clustered hash values still spread across shards.
    std::uint64_t h = static_cast<std::uint64_t>(Hash{}(key));
    h ^= h >> 33;
    h *= 0xff51afd7ed558ccdULL;
    h ^= h >> 33;
    return *shards_[h & (shards_.size() - 1)];
  }

  std::size_t byte_budget_;
  std::size_t shard_budget_;
  // unique_ptr because a Shard owns a mutex and can be neither moved nor
  // copied, which vector growth would otherwise require.
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace wrbpg
