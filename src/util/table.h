// Fixed-width ASCII table printer for bench/ output.
//
// The paper's tables (e.g. Table 1) are re-emitted as aligned text so that
// `bench_*` binaries read like the published rows.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace wrbpg {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void AddRow(std::vector<std::string> row);
  void Print(std::ostream& out) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace wrbpg
