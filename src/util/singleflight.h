// Single-flight request coalescing — concurrent callers asking for the
// same key share ONE execution of the underlying work (DESIGN.md §13).
//
// Do(key, fn) elects the first caller of a key its leader: the leader
// runs fn() (outside the registry lock, so unrelated keys never wait on
// it) and publishes the result; every caller that arrives while the
// flight is in progress blocks on it and receives the same
// shared_ptr<const Value>. When the flight completes, the key is retired
// — a LATER Do with the same key starts a fresh flight. Deduplication is
// therefore strictly of in-flight work; persistent reuse across time is
// the cache's job (util/lru.h), and src/service/ stacks the two.
//
// An exception escaping fn() is captured and rethrown in the leader AND
// every waiting follower, so failures are not silently shared as null
// results. The flight is retired either way.
#pragma once

#include <condition_variable>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>

namespace wrbpg {

template <typename Key, typename Value, typename Hash = std::hash<Key>>
class SingleFlight {
 public:
  struct Outcome {
    std::shared_ptr<const Value> value;
    // True when this caller executed fn itself; false when it shared a
    // flight another caller led (the "deduplicated" case).
    bool leader = false;
  };

  // fn: () -> std::shared_ptr<const Value>.
  template <typename Fn>
  Outcome Do(const Key& key, Fn&& fn) {
    std::shared_ptr<Flight> flight;
    bool leader = false;
    {
      const std::scoped_lock lock(mu_);
      auto it = flights_.find(key);
      if (it == flights_.end()) {
        flight = std::make_shared<Flight>();
        flights_.emplace(key, flight);
        leader = true;
      } else {
        flight = it->second;
      }
    }
    if (leader) {
      try {
        auto value = fn();
        {
          const std::scoped_lock lock(flight->mu);
          flight->value = std::move(value);
          flight->done = true;
        }
      } catch (...) {
        {
          const std::scoped_lock lock(flight->mu);
          flight->error = std::current_exception();
          flight->done = true;
        }
        Retire(key);
        flight->cv.notify_all();
        throw;
      }
      Retire(key);
      flight->cv.notify_all();
      return Outcome{flight->value, true};
    }
    std::unique_lock lock(flight->mu);
    flight->cv.wait(lock, [&] { return flight->done; });
    if (flight->error) std::rethrow_exception(flight->error);
    return Outcome{flight->value, false};
  }

  // Flights currently executing (diagnostic; racy by nature).
  std::size_t in_flight() const {
    const std::scoped_lock lock(mu_);
    return flights_.size();
  }

 private:
  struct Flight {
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
    std::shared_ptr<const Value> value;
    std::exception_ptr error;
  };

  void Retire(const Key& key) {
    const std::scoped_lock lock(mu_);
    flights_.erase(key);
  }

  mutable std::mutex mu_;
  std::unordered_map<Key, std::shared_ptr<Flight>, Hash> flights_;
};

}  // namespace wrbpg
