// Cooperative cancellation for long-running searches.
//
// A CancelToken carries an optional wall-clock deadline and a manual stop
// flag. Exponential code paths (brute_force, the analysis budget search,
// the DWT DP) poll cancelled() at safe points and unwind gracefully —
// returning a timed-out/absent result instead of running unboundedly.
// Copies share the stop flag, so a token handed to a worker can be
// cancelled from the owner. Polling is cheap (an atomic load; the clock is
// read only when a deadline is set), but callers in tight loops should
// still throttle checks to every few hundred iterations.
#pragma once

#include <atomic>
#include <chrono>
#include <memory>
#include <optional>

namespace wrbpg {

class CancelToken {
 public:
  CancelToken() : stop_(std::make_shared<std::atomic<bool>>(false)) {}

  static CancelToken WithDeadline(std::chrono::nanoseconds budget) {
    CancelToken token;
    token.has_deadline_ = true;
    token.deadline_ = std::chrono::steady_clock::now() + budget;
    return token;
  }
  static CancelToken WithDeadlineMs(double ms) {
    return WithDeadline(std::chrono::nanoseconds(
        static_cast<std::chrono::nanoseconds::rep>(ms * 1e6)));
  }

  // Requests cancellation; every copy of this token observes it.
  void Cancel() const { stop_->store(true, std::memory_order_relaxed); }

  bool cancelled() const {
    if (stop_->load(std::memory_order_relaxed)) return true;
    if (has_deadline_ && std::chrono::steady_clock::now() >= deadline_) {
      stop_->store(true, std::memory_order_relaxed);
      return true;
    }
    return false;
  }

  // Time left before the deadline (never negative); nullopt when the token
  // has no deadline. Used to size per-stage budgets in fallback chains.
  std::optional<std::chrono::nanoseconds> remaining() const {
    if (!has_deadline_) return std::nullopt;
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline_) return std::chrono::nanoseconds{0};
    return deadline_ - now;
  }

 private:
  std::shared_ptr<std::atomic<bool>> stop_;
  bool has_deadline_ = false;
  std::chrono::steady_clock::time_point deadline_{};
};

}  // namespace wrbpg
