// Fixed-size thread pool with a blocking task queue, TaskGroup scoped
// waiting, and ParallelFor.
//
// The pool is the substrate for the parallel exact-search engine (see
// DESIGN.md §8): brute-force frontier expansion, the analysis budget
// sweeps, and RobustScheduler's speculative fallback chain all fan work
// out here. Three properties the search engine relies on:
//
//   * Exceptions thrown inside a task propagate to the waiter. The first
//     exception raised by a task in a TaskGroup (or, for bare Submit, in
//     the pool) is rethrown by the corresponding Wait(); later ones are
//     dropped. Nothing ever reaches std::terminate.
//   * Tasks may submit tasks — including waiting on them. TaskGroup::Wait
//     lends the calling thread to the pool (it pops and runs queued tasks
//     while its own are outstanding), so nested fan-out cannot deadlock
//     even on a single-thread pool.
//   * The destructor drains the queue (every submitted task runs) and then
//     joins the workers; exceptions surfacing during the drain are
//     discarded because a destructor has no waiter to hand them to.
//
// ThreadPool::Wait() waits for the WHOLE pool to go idle and is intended
// for top-level owners only; from inside a task, wait on a TaskGroup
// instead (the pool-wide in-flight count includes the caller's own task,
// which can never reach zero from within).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace wrbpg {

class ThreadPool {
 public:
  // num_threads == 0 selects std::thread::hardware_concurrency() (min 1).
  explicit ThreadPool(std::size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Enqueue a task. Safe to call from worker threads.
  void Submit(std::function<void()> task);

  // Block until every submitted task (including tasks submitted by tasks)
  // has finished executing, helping to run queued tasks meanwhile.
  // Rethrows the first exception a bare-Submitted task raised since the
  // last Wait(). Must not be called from inside a task (use TaskGroup).
  void Wait();

  std::size_t size() const noexcept { return workers_.size(); }

 private:
  friend class TaskGroup;

  // Pops one queued task and runs it on the calling thread; false when the
  // queue is empty. Used by Wait() and TaskGroup::Wait() to lend the
  // waiting thread to the pool.
  bool TryRunOneTask();
  void RunTask(std::function<void()>& task);
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable work_cv_;   // signals workers: work or shutdown
  std::condition_variable idle_cv_;   // signals Wait(): all drained
  std::size_t in_flight_ = 0;
  bool shutdown_ = false;
  std::exception_ptr first_error_;    // from bare-Submitted tasks
};

// Tracks a batch of tasks submitted to a pool so the submitter can wait on
// exactly that batch. Wait() is safe from inside another pool task: while
// the group's tasks are outstanding it executes queued pool work on the
// calling thread instead of blocking, so a 1-thread pool still makes
// progress through arbitrarily nested groups.
class TaskGroup {
 public:
  explicit TaskGroup(ThreadPool& pool) : pool_(pool) {}
  ~TaskGroup();

  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  void Submit(std::function<void()> task);

  // Blocks until every task submitted to THIS group has finished, then
  // rethrows the first exception any of them raised (if any).
  void Wait();

 private:
  struct State {
    std::mutex mu;
    std::condition_variable done_cv;
    std::size_t pending = 0;
    std::exception_ptr first_error;
  };

  ThreadPool& pool_;
  std::shared_ptr<State> state_ = std::make_shared<State>();
};

// Runs fn(i) for i in [begin, end) across the pool, blocking until
// complete. Iterations are chunked to limit queue overhead. Rethrows the
// first exception fn raised. Safe to call from inside a pool task.
void ParallelFor(ThreadPool& pool, std::int64_t begin, std::int64_t end,
                 const std::function<void(std::int64_t)>& fn);

// Process-wide default for search parallelism, consumed wherever an
// options struct leaves its `threads` field at 0. Starts from the
// WRBPG_THREADS environment variable when set (any integer >= 1), else 1 —
// library callers get today's sequential behavior unless they, the CLI
// (--threads), or the environment opt in. Setting 0 selects
// std::thread::hardware_concurrency().
std::size_t DefaultSearchThreads();
void SetDefaultSearchThreads(std::size_t n);

// Maps an options-struct `threads` request to an actual count:
// 0 -> DefaultSearchThreads(), otherwise the request itself (min 1).
std::size_t ResolveThreadCount(std::size_t requested);

}  // namespace wrbpg
