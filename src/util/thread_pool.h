// Fixed-size thread pool with a blocking task queue, plus ParallelFor.
//
// Parameter sweeps (budget scans in bench/, minimum-memory searches, property
// tests over seeds) are embarrassingly parallel; this pool keeps them on a
// bounded set of threads instead of spawning per task. Tasks must not throw:
// exceptions escaping a task terminate, per the CP.53-style contract that
// worker code reports failure through its captured state.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace wrbpg {

class ThreadPool {
 public:
  // num_threads == 0 selects std::thread::hardware_concurrency() (min 1).
  explicit ThreadPool(std::size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Enqueue a task. Safe to call from worker threads.
  void Submit(std::function<void()> task);

  // Block until every submitted task (including tasks submitted by tasks)
  // has finished executing.
  void Wait();

  std::size_t size() const noexcept { return workers_.size(); }

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable work_cv_;   // signals workers: work or shutdown
  std::condition_variable idle_cv_;   // signals Wait(): all drained
  std::size_t in_flight_ = 0;
  bool shutdown_ = false;
};

// Runs fn(i) for i in [begin, end) across the pool, blocking until complete.
// Iterations are chunked to limit queue overhead.
void ParallelFor(ThreadPool& pool, std::int64_t begin, std::int64_t end,
                 const std::function<void(std::int64_t)>& fn);

}  // namespace wrbpg
