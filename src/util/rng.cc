#include "util/rng.h"

#include <cassert>

namespace wrbpg {
namespace {

std::uint64_t SplitMix64(std::uint64_t& x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

constexpr std::uint64_t Rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  for (auto& s : state_) s = SplitMix64(seed);
}

std::uint64_t Rng::Next() noexcept {
  const std::uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

std::int64_t Rng::UniformInt(std::int64_t lo, std::int64_t hi) noexcept {
  assert(lo <= hi);
  const std::uint64_t range = static_cast<std::uint64_t>(hi - lo) + 1;
  if (range == 0) return static_cast<std::int64_t>(Next());  // full 64-bit span
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = UINT64_MAX - UINT64_MAX % range;
  std::uint64_t v = Next();
  while (v >= limit) v = Next();
  return lo + static_cast<std::int64_t>(v % range);
}

double Rng::UniformDouble() noexcept {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Rng::Bernoulli(double p) noexcept { return UniformDouble() < p; }

}  // namespace wrbpg
