#include "util/thread_pool.h"

#include <algorithm>
#include <cstdint>

namespace wrbpg {

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push(std::move(task));
    ++in_flight_;
  }
  work_cv_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutdown with drained queue
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--in_flight_ == 0) idle_cv_.notify_all();
    }
  }
}

void ParallelFor(ThreadPool& pool, std::int64_t begin, std::int64_t end,
                 const std::function<void(std::int64_t)>& fn) {
  if (begin >= end) return;
  const std::int64_t n = end - begin;
  const std::int64_t chunks =
      std::min<std::int64_t>(n, static_cast<std::int64_t>(pool.size()) * 4);
  const std::int64_t chunk = (n + chunks - 1) / chunks;
  for (std::int64_t lo = begin; lo < end; lo += chunk) {
    const std::int64_t hi = std::min(lo + chunk, end);
    pool.Submit([lo, hi, &fn] {
      for (std::int64_t i = lo; i < hi; ++i) fn(i);
    });
  }
  pool.Wait();
}

}  // namespace wrbpg
