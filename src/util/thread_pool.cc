#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>

namespace wrbpg {

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  // Workers only exit once the queue is empty, so this join is the drain:
  // every task submitted before (or during) destruction still runs.
  for (auto& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push(std::move(task));
    ++in_flight_;
  }
  work_cv_.notify_one();
}

void ThreadPool::RunTask(std::function<void()>& task) {
  try {
    task();
  } catch (...) {
    std::lock_guard<std::mutex> lock(mu_);
    if (!first_error_) first_error_ = std::current_exception();
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    --in_flight_;
  }
  // Waiters sleep whenever the queue is empty, so any completion may be
  // the one they are waiting for — not just the last.
  idle_cv_.notify_all();
}

bool ThreadPool::TryRunOneTask() {
  std::function<void()> task;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (queue_.empty()) return false;
    task = std::move(queue_.front());
    queue_.pop();
  }
  RunTask(task);
  return true;
}

void ThreadPool::Wait() {
  for (;;) {
    if (TryRunOneTask()) continue;
    std::unique_lock<std::mutex> lock(mu_);
    if (in_flight_ == 0) {
      if (first_error_) {
        std::exception_ptr error = first_error_;
        first_error_ = nullptr;
        std::rethrow_exception(error);
      }
      return;
    }
    if (!queue_.empty()) continue;  // raced with a Submit; go help again
    idle_cv_.wait(lock,
                  [this] { return in_flight_ == 0 || !queue_.empty(); });
  }
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutdown with drained queue
      task = std::move(queue_.front());
      queue_.pop();
    }
    RunTask(task);
  }
}

TaskGroup::~TaskGroup() {
  // A group abandoned with outstanding tasks (e.g. the submitting scope
  // unwinding from an exception) must not let them dangle: their wrappers
  // reference this group's shared state, which shared_ptr keeps alive, but
  // the caller's captures may die with the scope. Draining here keeps the
  // contract simple: group tasks never outlive the group.
  Wait();
}

void TaskGroup::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(state_->mu);
    ++state_->pending;
  }
  pool_.Submit([state = state_, task = std::move(task)]() mutable {
    try {
      task();
    } catch (...) {
      std::lock_guard<std::mutex> lock(state->mu);
      if (!state->first_error) state->first_error = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> lock(state->mu);
      --state->pending;
    }
    state->done_cv.notify_all();
  });
}

void TaskGroup::Wait() {
  for (;;) {
    {
      std::lock_guard<std::mutex> lock(state_->mu);
      if (state_->pending == 0) break;
    }
    // Lend this thread to the pool. The popped task is not necessarily
    // ours — running a stranger's task while we wait is still progress,
    // and running our own is what breaks the nested-wait deadlock.
    if (pool_.TryRunOneTask()) continue;
    std::unique_lock<std::mutex> lock(state_->mu);
    if (state_->pending == 0) break;
    // Our tasks are running on other threads and the queue is empty: sleep
    // briefly rather than spin. The timeout covers the race where a task
    // of ours submits new pool work after the TryRunOneTask miss.
    state_->done_cv.wait_for(lock, std::chrono::milliseconds(1),
                             [this] { return state_->pending == 0; });
  }
  std::lock_guard<std::mutex> lock(state_->mu);
  if (state_->first_error) {
    std::exception_ptr error = state_->first_error;
    state_->first_error = nullptr;
    std::rethrow_exception(error);
  }
}

void ParallelFor(ThreadPool& pool, std::int64_t begin, std::int64_t end,
                 const std::function<void(std::int64_t)>& fn) {
  if (begin >= end) return;
  const std::int64_t n = end - begin;
  const std::int64_t chunks =
      std::min<std::int64_t>(n, static_cast<std::int64_t>(pool.size()) * 4);
  const std::int64_t chunk = (n + chunks - 1) / chunks;
  TaskGroup group(pool);
  for (std::int64_t lo = begin; lo < end; lo += chunk) {
    const std::int64_t hi = std::min(lo + chunk, end);
    group.Submit([lo, hi, &fn] {
      for (std::int64_t i = lo; i < hi; ++i) fn(i);
    });
  }
  group.Wait();
}

namespace {

std::size_t InitialSearchThreads() {
  if (const char* env = std::getenv("WRBPG_THREADS")) {
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && v >= 1) {
      return static_cast<std::size_t>(v);
    }
  }
  return 1;
}

std::atomic<std::size_t>& SearchThreadsVar() {
  static std::atomic<std::size_t> value{InitialSearchThreads()};
  return value;
}

}  // namespace

std::size_t DefaultSearchThreads() {
  return SearchThreadsVar().load(std::memory_order_relaxed);
}

void SetDefaultSearchThreads(std::size_t n) {
  if (n == 0) {
    n = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  SearchThreadsVar().store(n, std::memory_order_relaxed);
}

std::size_t ResolveThreadCount(std::size_t requested) {
  return requested == 0 ? std::max<std::size_t>(1, DefaultSearchThreads())
                        : requested;
}

}  // namespace wrbpg
