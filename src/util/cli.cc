#include "util/cli.h"

#include <algorithm>
#include <cerrno>
#include <charconv>
#include <cstdlib>
#include <string_view>

#include "util/thread_pool.h"

namespace wrbpg {

CliArgs::CliArgs(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string_view arg(argv[i]);
    if (!arg.starts_with("--")) {
      positional_.emplace_back(arg);
      continue;
    }
    arg.remove_prefix(2);
    if (arg.empty()) {
      RecordError("bare '--' is not a valid flag");
      return;
    }
    std::string name;
    std::string value;
    const auto eq = arg.find('=');
    if (eq != std::string_view::npos) {
      name = std::string(arg.substr(0, eq));
      value = std::string(arg.substr(eq + 1));
    } else if (i + 1 < argc &&
               !std::string_view(argv[i + 1]).starts_with("--")) {
      // `--name value` when the next token is not itself a flag.
      name = std::string(arg);
      value = argv[++i];
    } else {
      name = std::string(arg);
      value = "true";
    }
    const auto [it, inserted] = flags_.emplace(name, std::move(value));
    (void)it;
    if (!inserted) {
      RecordError("duplicate flag '--" + name + "'");
      return;
    }
  }
}

void CliArgs::RecordError(const std::string& message) const {
  if (error_.empty()) error_ = message;
}

bool CliArgs::has(const std::string& name) const {
  return flags_.contains(name);
}

std::string CliArgs::GetString(const std::string& name,
                               const std::string& fallback) const {
  const auto it = flags_.find(name);
  return it == flags_.end() ? fallback : it->second;
}

std::int64_t CliArgs::GetInt(const std::string& name,
                             std::int64_t fallback) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  const std::string& s = it->second;
  std::int64_t value = 0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), value);
  if (ec == std::errc::result_out_of_range) {
    RecordError("flag '--" + name + "': value '" + s +
                "' overflows a 64-bit integer");
    return fallback;
  }
  if (ec != std::errc() || ptr != s.data() + s.size()) {
    RecordError("flag '--" + name + "': expected an integer, got '" + s +
                "'");
    return fallback;
  }
  return value;
}

double CliArgs::GetDouble(const std::string& name, double fallback) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  const std::string& s = it->second;
  if (s.empty()) {
    RecordError("flag '--" + name + "': expected a number, got empty value");
    return fallback;
  }
  errno = 0;
  char* end = nullptr;
  const double value = std::strtod(s.c_str(), &end);
  if (end != s.c_str() + s.size() || errno == ERANGE) {
    RecordError("flag '--" + name + "': expected a number, got '" + s + "'");
    return fallback;
  }
  return value;
}

std::size_t CliArgs::ApplyThreadsFlag() const {
  if (has("threads")) {
    const std::int64_t n = GetInt("threads", -1);
    if (n < 0) {
      RecordError("flag '--threads': expected a count >= 0, got '" +
                  GetString("threads", "") + "'");
      return DefaultSearchThreads();
    }
    SetDefaultSearchThreads(static_cast<std::size_t>(n));  // 0 -> hardware
  } else if (std::getenv("WRBPG_THREADS") == nullptr) {
    // CLI binaries default to the hardware concurrency; the library-level
    // default stays 1 so embedding code opts in explicitly.
    SetDefaultSearchThreads(0);
  }
  return DefaultSearchThreads();
}

bool CliArgs::CheckVerbFlags(
    const std::string& verb, const std::vector<VerbFlags>& table,
    const std::vector<std::string>& global_flags) const {
  const auto lists = [](const std::vector<std::string>& names,
                        const std::string& name) {
    return std::find(names.begin(), names.end(), name) != names.end();
  };
  const VerbFlags* own = nullptr;
  for (const VerbFlags& entry : table) {
    if (entry.verb == verb) {
      own = &entry;
      break;
    }
  }
  for (const auto& [name, value] : flags_) {
    (void)value;
    if (lists(global_flags, name)) continue;
    if (own != nullptr && lists(own->flags, name)) continue;
    // Name every verb that DOES accept the flag, so the error message
    // teaches the fix instead of just rejecting.
    std::string owners;
    for (const VerbFlags& entry : table) {
      if (entry.verb == verb || !lists(entry.flags, name)) continue;
      if (!owners.empty()) owners += "/";
      owners += "'" + entry.verb + "'";
    }
    if (owners.empty()) {
      RecordError("unknown flag '--" + name + "' for verb '" + verb + "'");
    } else {
      RecordError("flag '--" + name + "' belongs to verb " + owners +
                  ", not '" + verb + "'");
    }
    return false;
  }
  return true;
}

bool CliArgs::GetBool(const std::string& name, bool fallback) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

}  // namespace wrbpg
