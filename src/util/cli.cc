#include "util/cli.h"

#include <cstdlib>
#include <string_view>

namespace wrbpg {

CliArgs::CliArgs(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string_view arg(argv[i]);
    if (arg.rfind("--", 0) != 0) {
      positional_.emplace_back(arg);
      continue;
    }
    arg.remove_prefix(2);
    if (arg.empty()) {
      error_ = "bare '--' is not a valid flag";
      return;
    }
    const auto eq = arg.find('=');
    if (eq != std::string_view::npos) {
      flags_[std::string(arg.substr(0, eq))] = std::string(arg.substr(eq + 1));
      continue;
    }
    // `--name value` when the next token is not itself a flag; else boolean.
    if (i + 1 < argc && std::string_view(argv[i + 1]).rfind("--", 0) != 0) {
      flags_[std::string(arg)] = argv[++i];
    } else {
      flags_[std::string(arg)] = "true";
    }
  }
}

bool CliArgs::has(const std::string& name) const {
  return flags_.count(name) != 0;
}

std::string CliArgs::GetString(const std::string& name,
                               const std::string& fallback) const {
  const auto it = flags_.find(name);
  return it == flags_.end() ? fallback : it->second;
}

std::int64_t CliArgs::GetInt(const std::string& name,
                             std::int64_t fallback) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  return std::strtoll(it->second.c_str(), nullptr, 10);
}

double CliArgs::GetDouble(const std::string& name, double fallback) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  return std::strtod(it->second.c_str(), nullptr);
}

bool CliArgs::GetBool(const std::string& name, bool fallback) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

}  // namespace wrbpg
