// Small integer math helpers shared across the library.
//
// All routines are constexpr and operate on signed 64-bit quantities, the
// native width of pebble weights and budgets (see core/types.h).
#pragma once

#include <cassert>
#include <cstdint>

namespace wrbpg {

// Ceiling division for non-negative operands.
constexpr std::int64_t CeilDiv(std::int64_t a, std::int64_t b) {
  assert(a >= 0 && b > 0);
  return (a + b - 1) / b;
}

constexpr bool IsPowerOfTwo(std::int64_t x) {
  return x > 0 && (x & (x - 1)) == 0;
}

// Smallest power of two >= x (x must be positive and representable).
constexpr std::int64_t NextPowerOfTwo(std::int64_t x) {
  assert(x > 0);
  std::int64_t p = 1;
  while (p < x) p <<= 1;
  return p;
}

// Floor of log2(x) for positive x.
constexpr int FloorLog2(std::int64_t x) {
  assert(x > 0);
  int l = 0;
  while (x > 1) {
    x >>= 1;
    ++l;
  }
  return l;
}

// 2-adic valuation: largest d such that 2^d divides x (x positive).
constexpr int TwoAdicValuation(std::int64_t x) {
  assert(x > 0);
  int d = 0;
  while ((x & 1) == 0) {
    x >>= 1;
    ++d;
  }
  return d;
}

}  // namespace wrbpg
