// Minimal CSV writer used by the benchmark harness to dump figure series.
//
// Fields containing commas, quotes or newlines are quoted per RFC 4180 so the
// output loads cleanly into pandas/gnuplot for re-plotting the paper figures.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace wrbpg {

class CsvWriter {
 public:
  explicit CsvWriter(std::ostream& out) : out_(out) {}

  void WriteRow(const std::vector<std::string>& fields);
  void WriteRow(std::initializer_list<std::string_view> fields);

  // Convenience for numeric rows. Doubles use shortest round-trip
  // formatting: std::stod(Field(v)) == v for every finite v.
  static std::string Field(std::int64_t v);
  static std::string Field(double v);

 private:
  void WriteField(std::string_view field, bool first);
  std::ostream& out_;
};

}  // namespace wrbpg
