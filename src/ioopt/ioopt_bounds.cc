#include "ioopt/ioopt_bounds.h"

#include <algorithm>

#include "util/mathutil.h"

namespace wrbpg {

IoOptMvmBounds::IoOptMvmBounds(const MvmGraph& mvm)
    : m_(mvm.m),
      n_(mvm.n),
      w_in_(mvm.graph.weight(mvm.x(0))),
      w_c_(mvm.graph.weight(mvm.product(0, 0))) {}

Weight IoOptMvmBounds::LowerBound() const {
  return w_in_ * (m_ * n_ + n_) + w_c_ * m_;
}

Weight IoOptMvmBounds::UpperBoundCost(Weight budget) const {
  const std::int64_t h = std::min<std::int64_t>(
      (budget - w_in_) / (w_c_ + w_in_), m_);
  if (h < 1) return kInfiniteCost;
  const std::int64_t stripes = CeilDiv(m_, h);
  // First reads of A and x at input precision; the vector re-reads across
  // stripes are the "non-input/output data movements" the paper charges at
  // the doubled (accumulator) weight in the DA configuration — with equal
  // weights w_c == w_in and the term reduces to plain re-reads. Every
  // output is read and written once at accumulator precision.
  return w_in_ * (m_ * n_ + n_) + w_c_ * n_ * (stripes - 1) + 2 * w_c_ * m_;
}

Weight IoOptMvmBounds::UpperBoundMinMemory() const {
  return m_ * (w_c_ + w_in_) + w_in_;
}

}  // namespace wrbpg
