// IOOpt comparator bounds for MVM — the baseline of Sec 5.1/5.2.
//
// SUBSTITUTION (see DESIGN.md §3): the paper runs the external IOOpt tool
// (Olivry et al., PLDI'20/'21) on the matvec loop nest and then adjusts its
// bounds by hand for mixed precision. We implement those adjusted analytic
// bounds directly.
//
// Lower bound: every input word enters fast memory and every output leaves
// at least once; the paper doubles the output term's weight in the
// Double-Accumulator setting, i.e. outputs are charged at the accumulator
// weight:  LB = w_in (m n + n) + w_c m.   (Flat in the memory size.)
//
// Upper bound: IOOpt's schedule gives a fixed fast-memory split — "just
// under half" to outputs in the Equal case, with the accumulator allocation
// doubled in the DA case — so a budget of S bits keeps
//     h = floor((S - w_in) / (w_c + w_in))
// output rows resident per stripe (one word of streamed input alongside the
// h accumulators and their h matrix operands). A reads once, x re-reads per
// extra stripe — charged at the doubled weight in the DA configuration, the
// paper's "all non-input/output data movements are double-weighted"
// adjustment — and every output is both read and written:
//     UB(S) = w_in (m n + n) + w_c n (ceil(m/h) - 1) + 2 w_c m.
// UB bottoms out (h = m) at S = m (w_c + w_in) + w_in, which reproduces the
// published Table-1 IOOpt sizes: 193 words (Equal) and 289 words (DA) for
// MVM(96, 120).
#pragma once

#include "dataflows/mvm_graph.h"

namespace wrbpg {

class IoOptMvmBounds {
 public:
  explicit IoOptMvmBounds(const MvmGraph& mvm);

  // Memory-independent weighted I/O lower bound (bits).
  Weight LowerBound() const;

  // Weighted I/O (bits) of IOOpt's schedule under `budget` bits of fast
  // memory; kInfiniteCost when not even one output row fits.
  Weight UpperBoundCost(Weight budget) const;

  // Smallest budget (bits) at which UpperBoundCost stops improving.
  Weight UpperBoundMinMemory() const;

 private:
  std::int64_t m_, n_;
  Weight w_in_, w_c_;
};

}  // namespace wrbpg
