// Canonical structure analysis: color refinement, iso-invariant hashing,
// and verified vertex orbits (DESIGN.md §12).
//
// The refinement is the classic 1-dimensional Weisfeiler-Leman iteration
// seeded with (weight, in-degree, out-degree) and refined by the sorted
// parent/child color multisets until the partition stabilizes. Colors are
// assigned as ranks over the lexicographically sorted signatures, so the
// color VALUES themselves are isomorphism-invariant integers — two
// isomorphic graphs produce identical color histograms, which is what
// makes HashGraph iso-invariant by construction.
//
// Orbit contract: 1-WL color classes only OVER-approximate the true
// automorphism orbits (refinement-equivalent vertices need not be mapped
// to each other by any automorphism), so ComputeOrbits never trusts the
// colors alone. Each candidate pair is confirmed by building an explicit
// vertex bijection (individualize-and-refine on both sides) and checking
// that it preserves every edge and every weight. The returned partition
// is therefore a SUB-partition of the true orbits: it may split an orbit
// (when the heuristic alignment fails) but never merges two distinct
// orbits — the direction soundness-critical consumers (root-move pruning
// in the searcher) require.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/graph.h"
#include "core/types.h"

namespace wrbpg {

// Stable 1-WL coloring. colors[v] is the rank (0-based) of v's stable
// signature; ranks are iso-invariant (see header comment).
struct ColorRefinement {
  std::vector<std::uint32_t> colors;
  std::uint32_t num_colors = 0;
  int rounds = 0;  // refinement rounds until the partition stabilized
};

ColorRefinement RefineColors(const Graph& graph);

// Iso-invariant structural hash: equal for isomorphic graphs, and in
// practice distinct for non-isomorphic ones (the hash folds in node/edge
// counts, the weight histogram, the stable color histogram, and the edge
// color-pair multiset; refinement-equivalent non-isomorphic graphs can
// collide, which is the standard 1-WL completeness caveat).
using GraphHash = std::uint64_t;

GraphHash HashGraph(const Graph& graph);

// Verified automorphism classes. orbit_of[v] is the smallest vertex id in
// v's class; vertices share a class only when an explicit automorphism
// mapping one to the other was constructed and checked.
struct OrbitPartition {
  std::vector<NodeId> orbit_of;
  std::size_t num_orbits = 0;

  bool SameOrbit(NodeId u, NodeId v) const {
    return orbit_of[u] == orbit_of[v];
  }
};

OrbitPartition ComputeOrbits(const Graph& graph);

// Deterministic discrete labeling by individualize-and-refine: refine,
// then repeatedly give the smallest-id vertex of the first non-singleton
// color class a fresh color and re-refine, until every class is a
// singleton. labels[v] is then a permutation of 0..n-1. Optionally a
// vertex is individualized FIRST (before any tie-breaking), which is how
// the orbit verifier aligns two sides of a candidate automorphism. The
// labeling depends on vertex ids (it is NOT a canonical form); use
// HashGraph for iso-invariant identity.
std::vector<std::uint32_t> DeterministicLabeling(
    const Graph& graph, std::optional<NodeId> individualize_first = {});

// True when `map` (a is mapped to map[a] in `b`) is a weight- and
// edge-preserving bijection between the two graphs.
bool IsIsomorphismMap(const Graph& a, const Graph& b,
                      const std::vector<NodeId>& map);

// Heuristic isomorphism search: aligns the two deterministic labelings
// and verifies the induced bijection explicitly. Returns the verified
// mapping (a-id -> b-id), or nullopt when the alignment fails — which is
// conservative, never wrong. Complete in practice for the regular
// dataflow families (dwt/kary/chain/mvm/butterfly).
std::optional<std::vector<NodeId>> FindIsomorphism(const Graph& a,
                                                   const Graph& b);

}  // namespace wrbpg
