#include "ganalysis/bounds.h"

#include <algorithm>
#include <cstddef>

#include "core/analysis.h"

namespace wrbpg {

const char* ToString(BoundKind kind) {
  switch (kind) {
    case BoundKind::kAlgorithmic: return "algorithmic";
    case BoundKind::kWavefront: return "wavefront";
    case BoundKind::kSegment: return "segment";
  }
  return "?";
}

Weight NodePrice(const Graph& graph, NodeId x) {
  if (graph.is_source(x)) return 0;
  if (graph.is_sink(x)) return graph.weight(x);
  return 2 * graph.weight(x);
}

Weight HoldFootprint(const Graph& graph, NodeId child, NodeId parent) {
  // Weight of the node SET {parent} ∪ H(parent) ∪ H(child)∖{parent};
  // co-parents can also be grandparents, so dedupe explicitly.
  std::vector<NodeId> members;
  members.push_back(parent);
  for (NodeId g : graph.parents(parent)) members.push_back(g);
  for (NodeId p : graph.parents(child)) {
    if (p != parent) members.push_back(p);
  }
  std::sort(members.begin(), members.end());
  members.erase(std::unique(members.begin(), members.end()), members.end());
  Weight total = 0;
  for (NodeId v : members) total += graph.weight(v);
  return total;
}

namespace {

// Longest-path levels: sources 0, otherwise 1 + max parent level.
std::vector<int> TopoLevels(const Graph& graph) {
  std::vector<int> level(graph.num_nodes(), 0);
  for (NodeId v : graph.topological_order()) {
    for (NodeId p : graph.parents(v)) {
      level[v] = std::max(level[v], level[p] + 1);
    }
  }
  return level;
}

// Nodes from which a sink is reachable — the ones every valid schedule
// must compute (non-sources) or consume.
std::vector<unsigned char> SinkReachable(const Graph& graph) {
  std::vector<unsigned char> reach(graph.num_nodes(), 0);
  std::vector<NodeId> stack;
  for (NodeId s : graph.sinks()) {
    reach[s] = 1;
    stack.push_back(s);
  }
  while (!stack.empty()) {
    const NodeId v = stack.back();
    stack.pop_back();
    for (NodeId p : graph.parents(v)) {
      if (!reach[p]) {
        reach[p] = 1;
        stack.push_back(p);
      }
    }
  }
  return reach;
}

bool ChildIsTight(const Graph& graph, NodeId c, Weight budget,
                  const std::vector<unsigned char>& reach) {
  if (graph.is_source(c) || graph.in_degree(c) < 2 || !reach[c]) return false;
  for (NodeId x : graph.parents(c)) {
    if (HoldFootprint(graph, c, x) <= budget) return false;
  }
  return true;
}

ChargeGroup MakeGroup(const Graph& graph, NodeId c, int level) {
  ChargeGroup g;
  g.child = c;
  g.parents.assign(graph.parents(c).begin(), graph.parents(c).end());
  std::sort(g.parents.begin(), g.parents.end());
  g.level = level;
  g.min_price = kInfiniteCost;
  for (NodeId x : g.parents) {
    g.min_price = std::min(g.min_price, NodePrice(graph, x));
  }
  return g;
}

// Deterministic greedy packing: groups sorted by (price desc, child id
// asc) are admitted when their parent set is disjoint from every admitted
// one. `used` carries exclusions in and admissions out.
std::vector<ChargeGroup> GreedyPack(std::vector<ChargeGroup> candidates,
                                    std::vector<unsigned char>& used) {
  std::sort(candidates.begin(), candidates.end(),
            [](const ChargeGroup& a, const ChargeGroup& b) {
              if (a.min_price != b.min_price) return a.min_price > b.min_price;
              return a.child < b.child;
            });
  std::vector<ChargeGroup> picked;
  for (auto& g : candidates) {
    bool clash = false;
    for (NodeId x : g.parents) {
      if (used[x]) {
        clash = true;
        break;
      }
    }
    if (clash || g.min_price <= 0) continue;
    for (NodeId x : g.parents) used[x] = 1;
    picked.push_back(std::move(g));
  }
  return picked;
}

BoundCertificate FromGroups(BoundKind kind, const Graph& graph, Weight budget,
                            std::vector<ChargeGroup> groups) {
  BoundCertificate cert;
  cert.kind = kind;
  cert.budget = budget;
  cert.base = AlgorithmicLowerBound(graph);
  std::sort(groups.begin(), groups.end(),
            [](const ChargeGroup& a, const ChargeGroup& b) {
              return a.child < b.child;
            });
  for (const auto& g : groups) cert.excess += g.min_price;
  cert.groups = std::move(groups);
  cert.value = cert.base + cert.excess;
  return cert;
}

// Tight children bucketed by level, shared by both certificate builders.
std::vector<std::vector<ChargeGroup>> TightByLevel(const Graph& graph,
                                                   Weight budget) {
  const auto levels = TopoLevels(graph);
  const auto reach = SinkReachable(graph);
  const int max_level =
      levels.empty() ? 0 : *std::max_element(levels.begin(), levels.end());
  std::vector<std::vector<ChargeGroup>> by_level(
      static_cast<std::size_t>(max_level) + 1);
  for (NodeId c = 0; c < graph.num_nodes(); ++c) {
    if (ChildIsTight(graph, c, budget, reach)) {
      by_level[static_cast<std::size_t>(levels[c])].push_back(
          MakeGroup(graph, c, levels[c]));
    }
  }
  return by_level;
}

}  // namespace

BoundCertificate AlgorithmicCertificate(const Graph& graph, Weight budget) {
  return FromGroups(BoundKind::kAlgorithmic, graph, budget, {});
}

BoundCertificate WavefrontCertificate(const Graph& graph, Weight budget) {
  auto by_level = TightByLevel(graph, budget);
  std::vector<ChargeGroup> best;
  Weight best_excess = 0;
  for (auto& level_groups : by_level) {
    std::vector<unsigned char> used(graph.num_nodes(), 0);
    auto picked = GreedyPack(level_groups, used);
    Weight excess = 0;
    for (const auto& g : picked) excess += g.min_price;
    if (excess > best_excess) {  // strict: ties keep the lowest level
      best_excess = excess;
      best = std::move(picked);
    }
  }
  return FromGroups(BoundKind::kWavefront, graph, budget, std::move(best));
}

BoundCertificate SegmentCertificate(const Graph& graph, Weight budget) {
  // Start from the wavefront's best level, then extend across the rest of
  // the graph under global disjointness — so segment >= wavefront always.
  BoundCertificate wavefront = WavefrontCertificate(graph, budget);
  std::vector<unsigned char> used(graph.num_nodes(), 0);
  std::vector<ChargeGroup> picked = wavefront.groups;
  for (const auto& g : picked) {
    for (NodeId x : g.parents) used[x] = 1;
  }
  std::vector<ChargeGroup> rest;
  for (auto& level_groups : TightByLevel(graph, budget)) {
    for (auto& g : level_groups) {
      if (g.child != kInvalidNode) rest.push_back(std::move(g));
    }
  }
  auto extension = GreedyPack(std::move(rest), used);
  for (auto& g : extension) picked.push_back(std::move(g));
  return FromGroups(BoundKind::kSegment, graph, budget, std::move(picked));
}

std::vector<BoundCertificate> ComputeBoundCertificates(const Graph& graph,
                                                       Weight budget) {
  std::vector<BoundCertificate> certs;
  certs.push_back(AlgorithmicCertificate(graph, budget));
  certs.push_back(WavefrontCertificate(graph, budget));
  certs.push_back(SegmentCertificate(graph, budget));
  return certs;
}

Weight BestCertifiedBound(const Graph& graph, Weight budget) {
  Weight best = 0;
  for (const auto& cert : ComputeBoundCertificates(graph, budget)) {
    best = std::max(best, cert.value);
  }
  return best;
}

CertificateCheck VerifyCertificate(const Graph& graph,
                                   const BoundCertificate& cert) {
  auto fail = [](std::string msg) {
    return CertificateCheck{false, std::move(msg)};
  };
  if (cert.base != AlgorithmicLowerBound(graph)) {
    return fail("base does not equal the Prop 2.4 bound");
  }
  if (cert.value != cert.base + cert.excess) {
    return fail("value != base + excess");
  }
  if (cert.kind == BoundKind::kAlgorithmic) {
    if (!cert.groups.empty() || cert.excess != 0) {
      return fail("algorithmic certificate must carry no excess");
    }
    return {true, {}};
  }

  const auto reach = SinkReachable(graph);
  std::vector<unsigned char> used(graph.num_nodes(), 0);
  Weight excess = 0;
  for (const auto& g : cert.groups) {
    if (g.child >= graph.num_nodes()) return fail("group child out of range");
    if (graph.is_source(g.child)) return fail("group child is a source");
    if (!reach[g.child]) {
      return fail("group child cannot reach a sink (need not be computed)");
    }
    std::vector<NodeId> parents(graph.parents(g.child).begin(),
                                graph.parents(g.child).end());
    std::sort(parents.begin(), parents.end());
    if (parents != g.parents) {
      return fail("group parents do not match H(child)");
    }
    if (parents.size() < 2) return fail("group child has fewer than 2 parents");
    Weight min_price = kInfiniteCost;
    for (NodeId x : parents) {
      if (used[x]) return fail("parent sets are not pairwise disjoint");
      used[x] = 1;
      if (HoldFootprint(graph, g.child, x) <= cert.budget) {
        return fail("a parent's hold footprint fits the budget (not tight)");
      }
      min_price = std::min(min_price, NodePrice(graph, x));
    }
    if (min_price != g.min_price) return fail("group min_price is wrong");
    excess += min_price;
  }
  if (excess != cert.excess) return fail("excess does not match the groups");
  return {true, {}};
}

}  // namespace wrbpg
