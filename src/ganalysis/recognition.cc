#include "ganalysis/recognition.h"

#include <algorithm>
#include <string>

#include "dataflows/dwt_graph.h"
#include "dataflows/tree_graph.h"
#include "ganalysis/canonical.h"

namespace wrbpg {

const char* ToString(GraphFamily family) {
  switch (family) {
    case GraphFamily::kUnknown: return "unknown";
    case GraphFamily::kChain: return "chain";
    case GraphFamily::kKaryTree: return "kary-tree";
    case GraphFamily::kDwt: return "dwt";
  }
  return "?";
}

namespace {

// Depth of the in-tree below the root, in edges along the longest
// leaf-to-root path (== the number of internal levels when perfect).
int TreeDepth(const Graph& graph, NodeId root) {
  std::vector<int> depth(graph.num_nodes(), 0);
  int max_depth = 0;
  // parents(v) are the tree children; topological order visits them
  // before v, so walk the order REVERSED from the root down.
  const auto& topo = graph.topological_order();
  for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
    const NodeId v = *it;
    if (v == root) depth[v] = 0;
    for (NodeId p : graph.parents(v)) {
      depth[p] = depth[v] + 1;
      max_depth = std::max(max_depth, depth[p]);
    }
  }
  return max_depth;
}

// True when every internal node has exactly k tree-children and every
// leaf sits at the same depth.
bool IsPerfectKary(const Graph& graph, NodeId root, int k) {
  std::vector<int> depth(graph.num_nodes(), 0);
  const auto& topo = graph.topological_order();
  int leaf_depth = -1;
  for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
    const NodeId v = *it;
    if (v == root) depth[v] = 0;
    const auto kids = graph.parents(v);
    if (kids.empty()) {
      if (leaf_depth == -1) leaf_depth = depth[v];
      if (depth[v] != leaf_depth) return false;
      continue;
    }
    if (static_cast<int>(kids.size()) != k) return false;
    for (NodeId p : kids) depth[p] = depth[v] + 1;
  }
  return true;
}

RecognitionResult RecognizeTree(const Graph& graph, NodeId root) {
  RecognitionResult r;
  int k = 0;
  for (NodeId v = 0; v < graph.num_nodes(); ++v) {
    k = std::max(k, static_cast<int>(graph.in_degree(v)));
  }
  const int depth = TreeDepth(graph, root);
  if (k <= 1) {
    r.family = GraphFamily::kChain;
    r.param0 = graph.num_nodes();
    r.param1 = 0;
    r.label = "chain:" + std::to_string(graph.num_nodes());
    return r;
  }
  if (k > 8) return r;  // past the k! 2^k DP enumeration limit
  r.family = GraphFamily::kKaryTree;
  r.param0 = k;
  r.param1 = depth;
  r.label = (IsPerfectKary(graph, root, k) ? "kary:" : "tree:") +
            std::to_string(k) + "," + std::to_string(depth);
  return r;
}

RecognitionResult RecognizeDwt(const Graph& graph) {
  RecognitionResult r;
  const auto n = static_cast<std::int64_t>(graph.sources().size());
  if (n < 2 || graph.num_nodes() == 0) return r;

  // Uniform weights per role are a DWT invariant; infer the precision.
  const Weight ws = graph.weight(graph.sources().front());
  Weight wc = 0;
  for (NodeId v = 0; v < graph.num_nodes(); ++v) {
    if (graph.is_source(v)) {
      if (graph.weight(v) != ws) return r;
    } else if (wc == 0) {
      wc = graph.weight(v);
    } else if (graph.weight(v) != wc) {
      return r;
    }
  }
  if (wc == 0) return r;  // no non-source nodes

  // Node count n + Σ_{i=0..d-1} n/2^i is strictly increasing in d, so at
  // most one d can match; verify by explicit isomorphism, never by
  // counting alone.
  std::int64_t total = n;
  for (int d = 1; DwtParamsValid(n, d); ++d) {
    total += n >> (d - 1);
    if (total > graph.num_nodes()) break;
    if (total != graph.num_nodes()) continue;
    const DwtGraph ref = BuildDwt(n, d, PrecisionConfig{ws, wc});
    auto map = FindIsomorphism(graph, ref.graph);
    if (!map) continue;
    r.family = GraphFamily::kDwt;
    r.param0 = n;
    r.param1 = d;
    r.config = PrecisionConfig{ws, wc};
    r.to_reference = std::move(*map);
    r.label = "dwt:" + std::to_string(n) + "," + std::to_string(d);
    return r;
  }
  return r;
}

}  // namespace

RecognitionResult RecognizeFamily(const Graph& graph) {
  if (graph.num_nodes() < 2) return {};
  if (auto root = TreeRoot(graph)) return RecognizeTree(graph, *root);
  return RecognizeDwt(graph);
}

}  // namespace wrbpg
