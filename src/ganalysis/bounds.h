// Budget-aware start-state I/O lower-bound certificates (DESIGN.md §12).
//
// Proposition 2.4's algorithmic lower bound Σ_{A(G)} w + Σ_{Z(G)} w is
// budget-oblivious. These certificates add a budget-aware excess term via
// a simultaneity argument ("hold-or-pay"):
//
//   Consider any valid schedule and a non-source c with |H(c)| >= 2 that
//   must be computed (a sink is reachable from it). At c's first compute
//   every parent is red, each continuously held since its origin event
//   (the load or compute that last made it red). At the latest origin —
//   of parent q, say — every OTHER parent of c is simultaneously red. If
//   that origin is a compute, H(q) is red too, so the hold footprint
//   W({q} ∪ H(q) ∪ H(c)∖{q}) fits the budget. Hence if the footprint
//   exceeds the budget for EVERY choice of q in H(c), some parent of c
//   must instead have been LOADED. A load of a non-source x is never
//   counted by Prop 2.4, and (since a non-source is only blue after a
//   store) drags an uncounted store along unless x is a sink:
//
//     price(x) = 0        x ∈ A(G)   (the counted first load suffices)
//              = w_x      x ∈ Z(G)∖A (store counted, load is extra)
//              = 2·w_x    otherwise  (store and load both extra)
//
//   Charging a set of such "tight" children with pairwise-DISJOINT parent
//   sets keeps the charged nodes distinct whatever the schedule does, so
//
//     Cost >= ALB + Σ_groups min_{x ∈ H(c)} price(x).
//
// NOTE a naive antichain-footprint bound ("the wavefront weighs more than
// the budget, so something spills") is UNSOUND: k independent chains
// a_i → b_i at budget 2w have every-antichain footprint kw ≫ B yet cost
// exactly ALB. Simultaneous residency must be FORCED, which is what the
// common-child hold-continuity argument above does.
//
// Two certificates instantiate the theorem with different witnesses:
//   * wavefront — charge groups restricted to the single best topological
//     level (the groups form an antichain);
//   * segment   — the wavefront groups extended greedily across all
//     levels under global parent-set disjointness (so segment value >=
//     wavefront value by construction).
//
// Certificates carry their witness (the charge groups) and are checked by
// VerifyCertificate, an independent re-derivation that trusts nothing but
// the graph and the witness.
#pragma once

#include <string>
#include <vector>

#include "core/graph.h"
#include "core/types.h"

namespace wrbpg {

enum class BoundKind : std::uint8_t {
  kAlgorithmic = 0,  // Prop 2.4, no witness needed
  kWavefront,
  kSegment,
};

const char* ToString(BoundKind kind);

// One charge group of the hold-or-pay argument: a tight child and its
// full parent set, contributing min price(x) over x in parents.
struct ChargeGroup {
  NodeId child = kInvalidNode;
  std::vector<NodeId> parents;  // H(child), ascending
  Weight min_price = 0;
  int level = 0;  // longest-path level of child (sources are level 0)
};

struct BoundCertificate {
  BoundKind kind = BoundKind::kAlgorithmic;
  Weight budget = 0;
  Weight base = 0;    // AlgorithmicLowerBound(graph)
  Weight excess = 0;  // Σ groups min_price
  Weight value = 0;   // base + excess
  std::vector<ChargeGroup> groups;  // the witness; empty for kAlgorithmic
};

// price(x) of the header comment.
Weight NodePrice(const Graph& graph, NodeId x);

// W({parent} ∪ H(parent) ∪ H(child)∖{parent}) — the red-set weight forced
// at the latest origin event when that origin is a compute of `parent`.
Weight HoldFootprint(const Graph& graph, NodeId child, NodeId parent);

// Prop 2.4 packaged as a (witness-free) certificate for uniform tables.
BoundCertificate AlgorithmicCertificate(const Graph& graph, Weight budget);

// The single-level and cross-level instantiations described above. Both
// degrade gracefully to excess == 0 (value == ALB) when no child is
// tight at this budget.
BoundCertificate WavefrontCertificate(const Graph& graph, Weight budget);
BoundCertificate SegmentCertificate(const Graph& graph, Weight budget);

// All three, in BoundKind order.
std::vector<BoundCertificate> ComputeBoundCertificates(const Graph& graph,
                                                       Weight budget);

// max over ComputeBoundCertificates of value — the start-state bound
// consumers (searcher root bound, robust chain) should use.
Weight BestCertifiedBound(const Graph& graph, Weight budget);

struct CertificateCheck {
  bool ok = false;
  std::string error;  // empty when ok
};

// Independent checker: re-derives base and every group's tightness,
// price, pairwise disjointness, and the arithmetic, from the graph alone.
CertificateCheck VerifyCertificate(const Graph& graph,
                                   const BoundCertificate& cert);

}  // namespace wrbpg
