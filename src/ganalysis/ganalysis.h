// Pass-based static analyzer over Graph (DESIGN.md §12).
//
// Mirrors the lint engine's registry idiom (src/lint) at the graph level:
// a fixed registry of passes with stable ids, each emitting
// machine-checkable facts —
//
//   structure    graph hygiene diagnostics (these are the former LintGraph
//                rules; src/lint delegates here and converts, so lint's
//                rule ids and messages are unchanged)
//   canonical    iso-invariant GraphHash + verified vertex orbits
//   recognition  (family, params[, reference mapping]) for closed-form
//                DP routing
//   bounds       budget-aware start-state lower-bound certificates with
//                re-checkable witnesses (ganalysis/bounds.h)
//
// Everything the analyzer asserts beyond plain facts is carried as a
// certificate whose witness an independent checker re-derives — consumers
// (searcher root bound, robust chain routing, the CLI `analyze` verb)
// never have to trust the prover. Runs are observable under `ganalysis.*`
// counters and span (obs layer, wrbpg-obs-v1).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "core/graph.h"
#include "core/types.h"
#include "ganalysis/bounds.h"
#include "ganalysis/canonical.h"
#include "ganalysis/recognition.h"

namespace wrbpg {

enum class FactSeverity : std::uint8_t { kInfo = 0, kWarning };

const char* ToString(FactSeverity severity);

// Registry entry; ids are stable and usable in CLI output and JSON.
struct AnalysisPass {
  std::string_view id;
  std::string_view description;
};

std::span<const AnalysisPass> AllAnalysisPasses();

// nullptr when no pass has this id.
const AnalysisPass* FindAnalysisPass(std::string_view id);

// One structural diagnostic (the "structure" pass family).
struct GraphFact {
  std::string_view pass_id;  // points into the static registry
  FactSeverity severity = FactSeverity::kInfo;
  NodeId node = kInvalidNode;
  std::string message;
};

// The structure rules alone, judged against `outputs` (the former
// LintGraph semantics: nodes with no path to any output are flagged).
std::vector<GraphFact> RunStructureRules(const Graph& graph,
                                         std::span<const NodeId> outputs);
std::vector<GraphFact> RunStructureRules(const Graph& graph);

struct AnalysisOptions {
  // Budget for the bound certificates; <= 0 selects MinValidBudget(graph).
  Weight budget = 0;
  // Re-check every emitted certificate with VerifyCertificate and record
  // the outcome (facts turn into kWarning on a failure — which would be
  // an analyzer bug, not a graph property).
  bool verify_certificates = true;
};

struct GraphAnalysis {
  Weight budget = 0;  // the budget the bounds pass ran at

  // canonical
  GraphHash hash = 0;
  std::uint32_t num_colors = 0;
  OrbitPartition orbits;

  // recognition
  RecognitionResult recognition;

  // bounds (BoundKind order) and their verification outcomes (parallel
  // array, empty when verification was disabled).
  std::vector<BoundCertificate> certificates;
  std::vector<CertificateCheck> checks;
  Weight best_bound = 0;  // max certificate value

  // structure
  std::vector<GraphFact> facts;
};

GraphAnalysis AnalyzeGraph(const Graph& graph,
                           const AnalysisOptions& options = {});

// Human-readable report, one section per pass.
std::string RenderGraphAnalysis(const GraphAnalysis& analysis);

// Machine-readable rendering (stable field names, obs/json writer).
std::string GraphAnalysisToJson(const GraphAnalysis& analysis);

}  // namespace wrbpg
