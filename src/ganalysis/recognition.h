// Structural family recognition (DESIGN.md §12).
//
// Identifies serialized graphs as instances of the closed-form families —
// chain, k-ary in-tree, DWT(n, d) — and returns the parameters plus, for
// DWT, a verified isomorphism onto a freshly built reference instance, so
// callers can route to the polynomial DP schedulers (KaryTreeScheduler,
// DwtOptimalScheduler) instead of exponential search. Recognition is
// conservative: a kUnknown answer is always safe, a recognized answer is
// backed by an explicitly checked structure (in-tree test / verified
// bijection), never by parameter heuristics alone.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/graph.h"
#include "core/types.h"
#include "dataflows/weights.h"

namespace wrbpg {

enum class GraphFamily : std::uint8_t {
  kUnknown = 0,
  kChain,     // in-tree with every in-degree <= 1 (a path into the sink)
  kKaryTree,  // rooted in-tree, in-degree <= 8 (the DP's k! 2^k limit)
  kDwt,       // isomorphic to BuildDwt(n, d) for the inferred precision
};

const char* ToString(GraphFamily family);

struct RecognitionResult {
  GraphFamily family = GraphFamily::kUnknown;
  // Family parameters: chain -> (length, 0); kary -> (k, depth);
  // dwt -> (n, d).
  std::int64_t param0 = 0;
  std::int64_t param1 = 0;
  // Inferred node-weight configuration (dwt only; trees take arbitrary
  // weights and leave this zero).
  PrecisionConfig config = {0, 0};
  // dwt only: verified mapping graph-id -> reference-BuildDwt-id. Empty
  // for the tree families (their DP runs on the graph directly).
  std::vector<NodeId> to_reference;
  // Human-readable spec label, e.g. "dwt:16,2" / "kary:2,4" / "chain:9".
  std::string label;

  bool recognized() const { return family != GraphFamily::kUnknown; }
};

RecognitionResult RecognizeFamily(const Graph& graph);

}  // namespace wrbpg
