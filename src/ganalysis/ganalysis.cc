#include "ganalysis/ganalysis.h"

#include <algorithm>
#include <cstddef>
#include <cstdio>
#include <string>
#include <utility>

#include "core/analysis.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/span.h"

namespace wrbpg {

const char* ToString(FactSeverity severity) {
  switch (severity) {
    case FactSeverity::kInfo: return "info";
    case FactSeverity::kWarning: return "warning";
  }
  return "?";
}

namespace {

constexpr AnalysisPass kPasses[] = {
    {"graph-irrelevant-node",
     "node has no path to any output; schedules never need it"},
    {"graph-nonpositive-weight", "node weight is not positive"},
    {"graph-isolated-node", "node is both a source and a sink"},
    {"canonical-hash",
     "iso-invariant structural hash and verified vertex orbits"},
    {"family-recognition",
     "identify chain/kary/dwt instances for closed-form DP routing"},
    {"bound-certificates",
     "budget-aware start-state I/O lower bounds with re-checkable "
     "witnesses"},
};

std::string NodeStr(NodeId v) { return "v" + std::to_string(v); }

}  // namespace

std::span<const AnalysisPass> AllAnalysisPasses() { return kPasses; }

const AnalysisPass* FindAnalysisPass(std::string_view id) {
  for (const auto& pass : kPasses) {
    if (pass.id == id) return &pass;
  }
  return nullptr;
}

std::vector<GraphFact> RunStructureRules(const Graph& graph,
                                         std::span<const NodeId> outputs) {
  std::vector<GraphFact> facts;
  const NodeId n = graph.num_nodes();

  // Reverse reachability from the outputs: a node that cannot reach any
  // of them contributes nothing to the stopping condition.
  std::vector<unsigned char> relevant(n, 0);
  std::vector<NodeId> stack;
  for (NodeId s : outputs) {
    if (s < n && !relevant[s]) {
      relevant[s] = 1;
      stack.push_back(s);
    }
  }
  while (!stack.empty()) {
    const NodeId v = stack.back();
    stack.pop_back();
    for (NodeId p : graph.parents(v)) {
      if (!relevant[p]) {
        relevant[p] = 1;
        stack.push_back(p);
      }
    }
  }

  for (NodeId v = 0; v < n; ++v) {
    if (!relevant[v]) {
      facts.push_back({.pass_id = "graph-irrelevant-node",
                       .severity = FactSeverity::kInfo,
                       .node = v,
                       .message = NodeStr(v) +
                                  " has no path to any output; schedules "
                                  "never need it"});
    }
    if (graph.weight(v) <= 0) {
      facts.push_back({.pass_id = "graph-nonpositive-weight",
                       .severity = FactSeverity::kInfo,
                       .node = v,
                       .message = NodeStr(v) + " has non-positive weight " +
                                  std::to_string(graph.weight(v))});
    }
    if (graph.is_source(v) && graph.is_sink(v)) {
      facts.push_back({.pass_id = "graph-isolated-node",
                       .severity = FactSeverity::kInfo,
                       .node = v,
                       .message = NodeStr(v) +
                                  " is both a source and a sink (isolated)"});
    }
  }
  return facts;
}

std::vector<GraphFact> RunStructureRules(const Graph& graph) {
  return RunStructureRules(graph, graph.sinks());
}

GraphAnalysis AnalyzeGraph(const Graph& graph, const AnalysisOptions& options) {
  static const obs::Counter runs("ganalysis.runs");
  static const obs::Counter certs_emitted("ganalysis.certificates");
  static const obs::Counter verify_ok("ganalysis.verify.ok");
  static const obs::Counter verify_fail("ganalysis.verify.fail");
  static const obs::Counter recognized("ganalysis.recognized");
  static const obs::Gauge orbit_gauge("ganalysis.orbits");
  static const obs::Counter excess_bits("ganalysis.excess_bits");
  obs::ScopedSpan span("ganalysis.analyze");
  runs.Add();

  GraphAnalysis a;
  a.budget = options.budget > 0 ? options.budget : MinValidBudget(graph);

  {
    obs::ScopedSpan pass_span("ganalysis.canonical");
    const ColorRefinement refinement = RefineColors(graph);
    a.num_colors = refinement.num_colors;
    a.hash = HashGraph(graph);
    a.orbits = ComputeOrbits(graph);
    orbit_gauge.Max(a.orbits.num_orbits);
  }
  {
    obs::ScopedSpan pass_span("ganalysis.recognition");
    a.recognition = RecognizeFamily(graph);
    if (a.recognition.recognized()) recognized.Add();
  }
  {
    obs::ScopedSpan pass_span("ganalysis.bounds");
    a.certificates = ComputeBoundCertificates(graph, a.budget);
    certs_emitted.Add(a.certificates.size());
    for (const auto& cert : a.certificates) {
      a.best_bound = std::max(a.best_bound, cert.value);
      excess_bits.Add(static_cast<std::uint64_t>(cert.excess));
      if (options.verify_certificates) {
        a.checks.push_back(VerifyCertificate(graph, cert));
        (a.checks.back().ok ? verify_ok : verify_fail).Add();
      }
    }
  }
  {
    obs::ScopedSpan pass_span("ganalysis.structure");
    a.facts = RunStructureRules(graph);
  }

  for (std::size_t i = 0; i < a.checks.size(); ++i) {
    if (!a.checks[i].ok) {
      a.facts.push_back(
          {.pass_id = "bound-certificates",
           .severity = FactSeverity::kWarning,
           .message = std::string(ToString(a.certificates[i].kind)) +
                      " certificate failed verification: " +
                      a.checks[i].error});
    }
  }
  return a;
}

std::string RenderGraphAnalysis(const GraphAnalysis& a) {
  std::string out;
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(a.hash));
  out += "canonical: hash=" + std::string(buf) +
         " colors=" + std::to_string(a.num_colors) +
         " orbits=" + std::to_string(a.orbits.num_orbits) + "\n";
  out += "recognition: family=" + std::string(ToString(a.recognition.family));
  if (a.recognition.recognized()) out += " spec=" + a.recognition.label;
  out += "\n";
  out += "bounds @ budget " + std::to_string(a.budget) + ":\n";
  for (std::size_t i = 0; i < a.certificates.size(); ++i) {
    const auto& c = a.certificates[i];
    out += "  " + std::string(ToString(c.kind)) +
           ": value=" + std::to_string(c.value) +
           " (base=" + std::to_string(c.base) +
           " excess=" + std::to_string(c.excess) +
           " groups=" + std::to_string(c.groups.size()) + ")";
    if (i < a.checks.size()) {
      out += a.checks[i].ok ? " verified"
                            : " VERIFY-FAILED: " + a.checks[i].error;
    }
    out += "\n";
    for (const auto& g : c.groups) {
      out += "    charge v" + std::to_string(g.child) + " level " +
             std::to_string(g.level) + " parents {";
      for (std::size_t j = 0; j < g.parents.size(); ++j) {
        if (j > 0) out += ",";
        out += "v" + std::to_string(g.parents[j]);
      }
      out += "} price " + std::to_string(g.min_price) + "\n";
    }
  }
  out += "best bound: " + std::to_string(a.best_bound) + "\n";
  for (const auto& f : a.facts) {
    out += std::string(ToString(f.severity)) + " [" +
           std::string(f.pass_id) + "] " + f.message + "\n";
  }
  return out;
}

std::string GraphAnalysisToJson(const GraphAnalysis& a) {
  obs::Json doc = obs::Json::Object();
  doc.Set("schema", "wrbpg-ganalysis-v1");
  doc.Set("budget", a.budget);

  char buf[32];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(a.hash));
  obs::Json canonical = obs::Json::Object();
  canonical.Set("hash", std::string(buf));
  canonical.Set("colors", static_cast<std::uint64_t>(a.num_colors));
  canonical.Set("orbits", static_cast<std::uint64_t>(a.orbits.num_orbits));
  doc.Set("canonical", std::move(canonical));

  obs::Json recog = obs::Json::Object();
  recog.Set("family", ToString(a.recognition.family));
  if (a.recognition.recognized()) {
    recog.Set("spec", a.recognition.label);
    recog.Set("param0", a.recognition.param0);
    recog.Set("param1", a.recognition.param1);
  }
  doc.Set("recognition", std::move(recog));

  obs::Json certs = obs::Json::Array();
  for (std::size_t i = 0; i < a.certificates.size(); ++i) {
    const auto& c = a.certificates[i];
    obs::Json jc = obs::Json::Object();
    jc.Set("kind", ToString(c.kind));
    jc.Set("value", c.value);
    jc.Set("base", c.base);
    jc.Set("excess", c.excess);
    if (i < a.checks.size()) jc.Set("verified", a.checks[i].ok);
    obs::Json groups = obs::Json::Array();
    for (const auto& g : c.groups) {
      obs::Json jg = obs::Json::Object();
      jg.Set("child", static_cast<std::uint64_t>(g.child));
      jg.Set("level", std::int64_t{g.level});
      jg.Set("price", g.min_price);
      obs::Json parents = obs::Json::Array();
      for (NodeId p : g.parents) parents.Push(static_cast<std::uint64_t>(p));
      jg.Set("parents", std::move(parents));
      groups.Push(std::move(jg));
    }
    jc.Set("groups", std::move(groups));
    certs.Push(std::move(jc));
  }
  doc.Set("certificates", std::move(certs));
  doc.Set("best_bound", a.best_bound);

  obs::Json facts = obs::Json::Array();
  for (const auto& f : a.facts) {
    obs::Json jf = obs::Json::Object();
    jf.Set("pass", f.pass_id);
    jf.Set("severity", ToString(f.severity));
    if (f.node != kInvalidNode) {
      jf.Set("node", static_cast<std::uint64_t>(f.node));
    }
    jf.Set("message", f.message);
    facts.Push(std::move(jf));
  }
  doc.Set("facts", std::move(facts));
  return doc.Dump();
}

}  // namespace wrbpg
