#include "ganalysis/canonical.h"

#include <algorithm>
#include <cstddef>
#include <numeric>
#include <utility>

namespace wrbpg {

namespace {

// One signature per vertex: (current color, sorted parent colors, sorted
// child colors), flattened with length prefixes so distinct shapes never
// compare equal.
using Signature = std::vector<std::uint64_t>;

Signature MakeSignature(const Graph& graph,
                        const std::vector<std::uint32_t>& colors, NodeId v) {
  Signature sig;
  const auto parents = graph.parents(v);
  const auto children = graph.children(v);
  sig.reserve(3 + parents.size() + children.size());
  sig.push_back(colors[v]);
  sig.push_back(parents.size());
  std::size_t parents_begin = sig.size();
  for (NodeId p : parents) sig.push_back(colors[p]);
  std::sort(sig.begin() + static_cast<std::ptrdiff_t>(parents_begin),
            sig.end());
  sig.push_back(children.size());
  std::size_t children_begin = sig.size();
  for (NodeId c : children) sig.push_back(colors[c]);
  std::sort(sig.begin() + static_cast<std::ptrdiff_t>(children_begin),
            sig.end());
  return sig;
}

// Re-ranks `colors` in place by sorting the current signatures; returns
// the number of distinct colors after the pass.
std::uint32_t RankPass(const Graph& graph, std::vector<std::uint32_t>& colors,
                       std::vector<std::pair<Signature, NodeId>>& scratch) {
  const NodeId n = graph.num_nodes();
  scratch.clear();
  scratch.reserve(n);
  for (NodeId v = 0; v < n; ++v) {
    scratch.emplace_back(MakeSignature(graph, colors, v), v);
  }
  std::sort(scratch.begin(), scratch.end());
  std::uint32_t rank = 0;
  for (std::size_t i = 0; i < scratch.size(); ++i) {
    if (i > 0 && scratch[i].first != scratch[i - 1].first) ++rank;
    colors[scratch[i].second] = rank;
  }
  return rank + 1;
}

// Seeds colors from the only round-zero invariants: weight and degrees.
std::uint32_t SeedColors(const Graph& graph,
                         std::vector<std::uint32_t>& colors) {
  const NodeId n = graph.num_nodes();
  std::vector<std::pair<Signature, NodeId>> seed;
  seed.reserve(n);
  for (NodeId v = 0; v < n; ++v) {
    seed.emplace_back(
        Signature{static_cast<std::uint64_t>(graph.weight(v)),
                  graph.in_degree(v), graph.out_degree(v)},
        v);
  }
  std::sort(seed.begin(), seed.end());
  colors.assign(n, 0);
  std::uint32_t rank = 0;
  for (std::size_t i = 0; i < seed.size(); ++i) {
    if (i > 0 && seed[i].first != seed[i - 1].first) ++rank;
    colors[seed[i].second] = rank;
  }
  return n == 0 ? 0 : rank + 1;
}

// Refines `colors` to the stable partition; returns rounds run.
int RefineToStable(const Graph& graph, std::vector<std::uint32_t>& colors,
                   std::uint32_t& num_colors) {
  std::vector<std::pair<Signature, NodeId>> scratch;
  int rounds = 0;
  while (num_colors < graph.num_nodes()) {
    const std::uint32_t next = RankPass(graph, colors, scratch);
    ++rounds;
    if (next == num_colors) break;
    num_colors = next;
  }
  return rounds;
}

std::uint64_t Mix(std::uint64_t h, std::uint64_t x) {
  // FNV-1a over the 8 bytes of x.
  for (int i = 0; i < 8; ++i) {
    h ^= (x >> (8 * i)) & 0xffu;
    h *= 0x100000001b3ull;
  }
  return h;
}

}  // namespace

ColorRefinement RefineColors(const Graph& graph) {
  ColorRefinement r;
  r.num_colors = SeedColors(graph, r.colors);
  r.rounds = RefineToStable(graph, r.colors, r.num_colors);
  return r;
}

GraphHash HashGraph(const Graph& graph) {
  const ColorRefinement r = RefineColors(graph);
  std::uint64_t h = 0xcbf29ce484222325ull;
  h = Mix(h, graph.num_nodes());
  h = Mix(h, graph.num_edges());
  h = Mix(h, static_cast<std::uint64_t>(r.num_colors));
  h = Mix(h, static_cast<std::uint64_t>(r.rounds));

  // Stable color histogram: (color, class size, class weight), in color
  // order — iso-invariant because the color ranks are.
  std::vector<std::uint64_t> class_size(r.num_colors, 0);
  std::vector<std::uint64_t> class_weight(r.num_colors, 0);
  for (NodeId v = 0; v < graph.num_nodes(); ++v) {
    class_size[r.colors[v]] += 1;
    class_weight[r.colors[v]] += static_cast<std::uint64_t>(graph.weight(v));
  }
  for (std::uint32_t c = 0; c < r.num_colors; ++c) {
    h = Mix(h, c);
    h = Mix(h, class_size[c]);
    h = Mix(h, class_weight[c]);
  }

  // Edge color-pair multiset, sorted.
  std::vector<std::uint64_t> edge_pairs;
  edge_pairs.reserve(graph.num_edges());
  for (NodeId v = 0; v < graph.num_nodes(); ++v) {
    for (NodeId p : graph.parents(v)) {
      edge_pairs.push_back(
          (static_cast<std::uint64_t>(r.colors[p]) << 32) | r.colors[v]);
    }
  }
  std::sort(edge_pairs.begin(), edge_pairs.end());
  for (std::uint64_t e : edge_pairs) h = Mix(h, e);
  return h;
}

std::vector<std::uint32_t> DeterministicLabeling(
    const Graph& graph, std::optional<NodeId> individualize_first) {
  const NodeId n = graph.num_nodes();
  std::vector<std::uint32_t> colors;
  std::uint32_t num_colors = SeedColors(graph, colors);

  auto individualize = [&](NodeId v) {
    colors[v] = num_colors;  // fresh color past every current rank
    ++num_colors;
    RefineToStable(graph, colors, num_colors);
  };

  RefineToStable(graph, colors, num_colors);
  if (individualize_first && n > 0) individualize(*individualize_first);

  while (num_colors < n) {
    // First non-singleton class (lowest color), smallest member id.
    std::vector<NodeId> first_member(num_colors, kInvalidNode);
    std::vector<std::uint32_t> count(num_colors, 0);
    for (NodeId v = 0; v < n; ++v) {
      ++count[colors[v]];
      if (first_member[colors[v]] == kInvalidNode) first_member[colors[v]] = v;
    }
    NodeId pick = kInvalidNode;
    for (std::uint32_t c = 0; c < num_colors; ++c) {
      if (count[c] > 1) {
        pick = first_member[c];
        break;
      }
    }
    if (pick == kInvalidNode) break;  // already discrete
    individualize(pick);
  }
  return colors;
}

bool IsIsomorphismMap(const Graph& a, const Graph& b,
                      const std::vector<NodeId>& map) {
  const NodeId n = a.num_nodes();
  if (b.num_nodes() != n || map.size() != n) return false;
  if (a.num_edges() != b.num_edges()) return false;
  std::vector<unsigned char> hit(n, 0);
  for (NodeId v = 0; v < n; ++v) {
    if (map[v] >= n || hit[map[v]]) return false;  // not a bijection
    hit[map[v]] = 1;
    if (a.weight(v) != b.weight(map[v])) return false;
  }
  for (NodeId v = 0; v < n; ++v) {
    const auto pa = a.parents(v);
    const auto pb = b.parents(map[v]);
    if (pa.size() != pb.size()) return false;
    std::vector<NodeId> mapped;
    mapped.reserve(pa.size());
    for (NodeId p : pa) mapped.push_back(map[p]);
    std::sort(mapped.begin(), mapped.end());
    std::vector<NodeId> target(pb.begin(), pb.end());
    std::sort(target.begin(), target.end());
    if (mapped != target) return false;
  }
  return true;
}

namespace {

// Bijection induced by aligning two discrete labelings: a-vertex with
// label L maps to the b-vertex with label L.
std::optional<std::vector<NodeId>> AlignLabelings(
    const std::vector<std::uint32_t>& la, const std::vector<std::uint32_t>& lb,
    NodeId n) {
  std::vector<NodeId> by_label(n, kInvalidNode);
  for (NodeId v = 0; v < n; ++v) {
    if (lb[v] >= n || by_label[lb[v]] != kInvalidNode) return std::nullopt;
    by_label[lb[v]] = v;
  }
  std::vector<NodeId> map(n, kInvalidNode);
  for (NodeId v = 0; v < n; ++v) {
    if (la[v] >= n) return std::nullopt;
    map[v] = by_label[la[v]];
  }
  return map;
}

}  // namespace

std::optional<std::vector<NodeId>> FindIsomorphism(const Graph& a,
                                                   const Graph& b) {
  const NodeId n = a.num_nodes();
  if (b.num_nodes() != n || a.num_edges() != b.num_edges()) {
    return std::nullopt;
  }
  if (n == 0) return std::vector<NodeId>{};
  const auto la = DeterministicLabeling(a);
  const auto lb = DeterministicLabeling(b);
  auto map = AlignLabelings(la, lb, n);
  if (!map || !IsIsomorphismMap(a, b, *map)) return std::nullopt;
  return map;
}

OrbitPartition ComputeOrbits(const Graph& graph) {
  const NodeId n = graph.num_nodes();
  OrbitPartition part;
  part.orbit_of.resize(n);
  std::iota(part.orbit_of.begin(), part.orbit_of.end(), 0);
  if (n == 0) {
    part.num_orbits = 0;
    return part;
  }

  auto find = [&](NodeId v) {
    while (part.orbit_of[v] != v) {
      part.orbit_of[v] = part.orbit_of[part.orbit_of[v]];
      v = part.orbit_of[v];
    }
    return v;
  };
  auto unite = [&](NodeId u, NodeId v) {
    u = find(u);
    v = find(v);
    if (u == v) return;
    if (u > v) std::swap(u, v);
    part.orbit_of[v] = u;  // smaller id becomes the representative
  };

  const ColorRefinement r = RefineColors(graph);
  // Candidate pairs: each vertex against its color class representative.
  std::vector<NodeId> rep(r.num_colors, kInvalidNode);
  // Labeling with the representative individualized first, computed
  // lazily once per class.
  std::vector<std::vector<std::uint32_t>> rep_labeling(r.num_colors);
  for (NodeId v = 0; v < n; ++v) {
    const std::uint32_t c = r.colors[v];
    if (rep[c] == kInvalidNode) {
      rep[c] = v;
      continue;
    }
    if (find(v) == find(rep[c])) continue;  // already known equivalent
    if (rep_labeling[c].empty()) {
      rep_labeling[c] = DeterministicLabeling(graph, rep[c]);
    }
    const auto lv = DeterministicLabeling(graph, v);
    auto map = AlignLabelings(rep_labeling[c], lv, n);
    if (map && IsIsomorphismMap(graph, graph, *map)) {
      // The whole verified automorphism is orbit information, not just
      // the (rep, v) pair that motivated it.
      for (NodeId u = 0; u < n; ++u) unite(u, (*map)[u]);
    }
  }

  // Path-compress to the final representatives and count classes.
  std::size_t orbits = 0;
  for (NodeId v = 0; v < n; ++v) {
    part.orbit_of[v] = find(v);
    if (part.orbit_of[v] == v) ++orbits;
  }
  part.num_orbits = orbits;
  return part;
}

}  // namespace wrbpg
