#include "lint/liveness.h"

#include <algorithm>

namespace wrbpg {

UseTimeline UseTimeline::OverComputeOrder(const Graph& graph,
                                          std::span<const NodeId> order) {
  UseTimeline timeline;
  timeline.uses_.resize(graph.num_nodes());
  timeline.cursor_.assign(graph.num_nodes(), 0);
  for (std::size_t t = 0; t < order.size(); ++t) {
    const NodeId v = order[t];
    if (v >= graph.num_nodes()) continue;
    for (NodeId p : graph.parents(v)) timeline.uses_[p].push_back(t);
  }
  // Positions are visited in order, so each per-node list is already sorted.
  return timeline;
}

UseTimeline UseTimeline::OverMoves(const Graph& graph,
                                   const Schedule& schedule) {
  UseTimeline timeline;
  timeline.uses_.resize(graph.num_nodes());
  timeline.cursor_.assign(graph.num_nodes(), 0);
  for (std::size_t i = 0; i < schedule.size(); ++i) {
    const Move& m = schedule[i];
    if (m.node >= graph.num_nodes()) continue;
    if (m.type == MoveType::kStore) {
      timeline.uses_[m.node].push_back(i);
    } else if (m.type == MoveType::kCompute && !graph.is_source(m.node)) {
      for (NodeId p : graph.parents(m.node)) timeline.uses_[p].push_back(i);
    }
  }
  return timeline;
}

std::size_t UseTimeline::NextUseAt(NodeId v, std::size_t t) const {
  auto& c = cursor_[v];
  const auto& uses = uses_[v];
  while (c < uses.size() && uses[c] < t) ++c;
  return c < uses.size() ? uses[c] : kNoUse;
}

MoveRefCounts::MoveRefCounts(const Graph& graph, const Schedule& schedule)
    : graph_(graph), counts_(graph.num_nodes(), 0) {
  for (const Move& m : schedule) Count(m, +1);
}

void MoveRefCounts::Consume(const Move& move) { Count(move, -1); }

void MoveRefCounts::Count(const Move& move, std::int64_t delta) {
  if (move.node >= graph_.num_nodes()) return;
  counts_[move.node] += delta;
  if (move.type == MoveType::kCompute && !graph_.is_source(move.node)) {
    for (NodeId p : graph_.parents(move.node)) counts_[p] += delta;
  }
}

MoveLiveness::MoveLiveness(const Graph& graph, const Schedule& schedule) {
  const NodeId n = graph.num_nodes();
  by_node_.resize(n);
  // open[v]: index into ranges_ of v's currently live range, or kNoMove.
  std::vector<std::size_t> open(n, kNoMove);

  auto use = [&](NodeId v, std::size_t i) {
    if (open[v] == kNoMove) return;  // read of a value that is not red
    LiveRange& r = ranges_[open[v]];
    if (r.use_count == 0) r.first_use = i;
    r.last_use = i;
    ++r.use_count;
  };

  for (std::size_t i = 0; i < schedule.size(); ++i) {
    const Move& m = schedule[i];
    const NodeId v = m.node;
    if (v >= n) continue;
    switch (m.type) {
      case MoveType::kLoad:
      case MoveType::kCompute:
        if (m.type == MoveType::kCompute && !graph.is_source(v)) {
          for (NodeId p : graph.parents(v)) use(p, i);
        }
        if (open[v] != kNoMove) break;  // redundant def: keep current range
        open[v] = ranges_.size();
        by_node_[v].push_back(ranges_.size());
        ranges_.push_back({.node = v, .def = i, .def_type = m.type});
        break;
      case MoveType::kStore:
        use(v, i);  // M2 reads the red pebble
        break;
      case MoveType::kDelete:
        if (open[v] != kNoMove) {
          ranges_[open[v]].kill = i;
          open[v] = kNoMove;
        }
        break;
    }
  }
  // Ranges still open run to the end of the schedule (kill == kNoMove).
}

const LiveRange* MoveLiveness::RangeAt(NodeId v, std::size_t i) const {
  const auto& ids = by_node_[v];
  // Last range with def <= i.
  auto it = std::upper_bound(ids.begin(), ids.end(), i,
                             [&](std::size_t idx, std::size_t range_id) {
                               return idx < ranges_[range_id].def;
                             });
  if (it == ids.begin()) return nullptr;
  const LiveRange& r = ranges_[*std::prev(it)];
  return i <= r.kill ? &r : nullptr;  // kill == kNoMove covers live-out
}

}  // namespace wrbpg
