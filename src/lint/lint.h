// Pass-based static analyzer for WRBPG schedules and graphs.
//
// LintSchedule treats a Schedule as an IR and runs a single fused pass —
// abstract replay (red/blue sets + occupancy, mirroring the simulator's
// per-move checks) interleaved with liveness-based waste detection — in
// O(moves * avg-degree), without ever calling Simulate().
//
// Severity contract (tested in lint_differential_test.cc):
//   * kError    the schedule is invalid: Simulate() rejects it, and the
//               first kError diagnostic carries the same SimErrorCode,
//               move index, and node as the simulator's report.
//   * kWarning  the schedule is valid but wasteful, and the diagnostic's
//               fix-it (a set of moves to drop) provably preserves
//               validity and never increases cost when applied.
//   * kInfo     advisory: attributed waste or structural observation with
//               no generally safe mechanical fix.
//
// Diagnostics attribute wasted I/O bits per rule, which is what
// bench_lint aggregates to explain why heuristic schedulers lose to the
// optimal ones (dead loads, spill churn, recompute thrash).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "core/graph.h"
#include "core/schedule.h"
#include "core/simulator.h"
#include "core/types.h"
#include "lint/liveness.h"

namespace wrbpg {

enum class LintSeverity : std::uint8_t { kInfo = 0, kWarning, kError };

const char* ToString(LintSeverity severity);

// Registry entry: one per rule, with a stable id ("dead-load") usable in
// CLI output, JSON, and suppression lists.
struct LintRule {
  std::string_view id;
  LintSeverity severity;  // default severity; kWarning rules may degrade
                          // to kInfo on sites where no safe fix exists
  std::string_view description;
};

// All known rules, schedule-level first, then graph-level.
std::span<const LintRule> AllLintRules();

// nullptr when no rule has this id.
const LintRule* FindLintRule(std::string_view id);

// A machine-readable fix: drop exactly these move indices from the
// schedule. Empty = no safe fix for this diagnostic. All fix-its emitted
// by kWarning diagnostics preserve validity and never increase cost (see
// fixes.h for the verified application path).
struct LintFixIt {
  std::vector<std::size_t> drop_moves;

  bool empty() const { return drop_moves.empty(); }
};

struct LintDiagnostic {
  std::string_view rule_id;  // points into the static registry
  LintSeverity severity = LintSeverity::kInfo;
  // Move the diagnostic anchors to; kNoMove for graph-level rules,
  // schedule.size() for end-of-schedule conditions (unmet sinks).
  std::size_t move_index = kNoMove;
  NodeId node = kInvalidNode;
  // I/O bits this rule attributes as wasted (0 when not applicable).
  Weight wasted_bits = 0;
  // For kError: the simulator error class this diagnostic mirrors.
  SimErrorCode sim_code = SimErrorCode::kNone;
  std::string message;
  LintFixIt fixit = {};
};

struct LintResult {
  // Graph-level diagnostics first, then move-ordered schedule diagnostics
  // (replay errors before derived rules at the same index), then
  // end-of-schedule diagnostics.
  std::vector<LintDiagnostic> diagnostics;

  Weight wasted_bits_total = 0;

  bool has_errors() const;
  std::size_t count(LintSeverity severity) const;
  // First kError in diagnostic order (== lowest move index), or nullptr.
  const LintDiagnostic* first_error() const;
};

struct LintOptions {
  // Include the graph-level rules in LintSchedule's result.
  bool graph_rules = true;
};

// Graph-level lints only: nodes irrelevant to every sink, non-positive
// weights, isolated nodes. O(nodes + edges).
std::vector<LintDiagnostic> LintGraph(const Graph& graph);

// Same, but relevance is judged against a designated output set instead of
// the structural sinks Z(G). Useful for partial pipelines where only some
// sinks matter: nodes with no path to any output are flagged.
std::vector<LintDiagnostic> LintGraph(const Graph& graph,
                                      std::span<const NodeId> outputs);

// The full analysis. Never calls Simulate(); O(moves * avg-degree) plus
// O(moves log moves) only when spill-churn fix feasibility is probed.
LintResult LintSchedule(const Graph& graph, Weight budget,
                        const Schedule& schedule,
                        const LintOptions& options = {});

// One line per diagnostic plus a summary, for CLI/text consumption.
std::string RenderLintResult(const LintResult& result);

// Machine-readable rendering of the same result (stable field names).
std::string LintResultToJson(const LintResult& result);

}  // namespace wrbpg
