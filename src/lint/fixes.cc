#include "lint/fixes.h"

#include <algorithm>
#include <vector>

namespace wrbpg {
namespace {

Schedule DropMoves(const Schedule& schedule,
                   const std::vector<unsigned char>& dropped) {
  std::vector<Move> kept;
  kept.reserve(schedule.size());
  for (std::size_t i = 0; i < schedule.size(); ++i) {
    if (!dropped[i]) kept.push_back(schedule[i]);
  }
  return Schedule(std::move(kept));
}

// Post-move red occupancy of a simulator-valid schedule (plain effect
// replay; no rule checks needed on an already-verified input).
std::vector<Weight> OccupancySeries(const Graph& graph,
                                    const Schedule& schedule) {
  std::vector<Weight> occ(schedule.size(), 0);
  std::vector<unsigned char> red(graph.num_nodes(), 0);
  Weight red_weight = 0;
  for (std::size_t i = 0; i < schedule.size(); ++i) {
    const Move& m = schedule[i];
    switch (m.type) {
      case MoveType::kLoad:
      case MoveType::kCompute:
        red[m.node] = 1;
        red_weight += graph.weight(m.node);
        break;
      case MoveType::kDelete:
        red[m.node] = 0;
        red_weight -= graph.weight(m.node);
        break;
      case MoveType::kStore:
        break;
    }
    occ[i] = red_weight;
  }
  return occ;
}

}  // namespace

LintFixResult ApplyLintFixes(const Graph& graph, Weight budget,
                             const Schedule& schedule,
                             const LintFixOptions& options) {
  LintFixResult result;
  result.schedule = schedule;
  result.verification = Simulate(graph, budget, schedule);
  if (!result.verification.valid) {
    result.message = "input schedule is invalid (" +
                     std::string(ToString(result.verification.code)) +
                     " at move " +
                     std::to_string(result.verification.error_index) +
                     "); repair it before applying lint fixes";
    return result;
  }
  result.ok = true;
  result.cost_before = result.verification.cost;
  result.cost_after = result.verification.cost;

  const LintOptions lint_options{.graph_rules = false};
  while (result.iterations < options.max_iterations) {
    const LintResult lint =
        LintSchedule(graph, budget, result.schedule, lint_options);
    if (lint.has_errors()) {
      // Cannot happen for a simulator-valid schedule (the soundness
      // contract); bail rather than edit on top of a broken analysis.
      result.message = "internal: linter reported errors on a valid schedule";
      result.ok = false;
      return result;
    }

    // Collect this round's fix-its, skipping any whose moves were already
    // claimed (e.g. a dead-load fix and a spill-churn fix sharing an M4).
    // Spill-churn fixes raise occupancy over their delete..reload window;
    // each one was proven feasible in isolation, but accepted fixes with
    // overlapping windows stack, so track the combined raise and defer any
    // fix the batch no longer has headroom for to a later iteration.
    std::vector<unsigned char> dropped(result.schedule.size(), 0);
    std::vector<Weight> occupancy;  // built on first churn fix only
    std::vector<Weight> raised;
    std::size_t accepted = 0;
    for (const LintDiagnostic& d : lint.diagnostics) {
      if (d.severity != LintSeverity::kWarning || d.fixit.empty()) continue;
      const bool conflict =
          std::any_of(d.fixit.drop_moves.begin(), d.fixit.drop_moves.end(),
                      [&](std::size_t i) { return dropped[i] != 0; });
      if (conflict) continue;
      if (d.rule_id == "spill-churn") {
        if (occupancy.empty()) {
          occupancy = OccupancySeries(graph, result.schedule);
          raised.assign(occupancy.size(), 0);
        }
        const std::size_t kill = d.fixit.drop_moves[0];
        const std::size_t def = d.fixit.drop_moves[1];
        const Weight w = graph.weight(d.node);
        bool fits = true;
        for (std::size_t i = kill; i < def && fits; ++i) {
          fits = occupancy[i] + raised[i] + w <= budget;
        }
        if (!fits) continue;
        for (std::size_t i = kill; i < def; ++i) raised[i] += w;
      }
      for (std::size_t i : d.fixit.drop_moves) dropped[i] = 1;
      ++accepted;
    }
    if (accepted == 0) break;
    ++result.iterations;

    const Schedule candidate = DropMoves(result.schedule, dropped);
    const SimResult sim = Simulate(graph, budget, candidate);
    if (!sim.valid || sim.cost > result.cost_after) {
      // Fix-its are individually proven safe, so a failing batch indicates
      // an analyzer bug; never ship an unverified edit.
      result.message = "internal: fix batch failed verification (" +
                       std::string(sim.valid ? "cost increased"
                                             : ToString(sim.code)) +
                       "); keeping the last verified schedule";
      result.ok = false;
      return result;
    }
    result.schedule = candidate;
    result.verification = sim;
    result.cost_after = sim.cost;
    result.fixes_applied += accepted;
    result.changed = true;
  }
  return result;
}

}  // namespace wrbpg
