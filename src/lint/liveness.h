// Liveness analysis over WRBPG schedules and compute orders.
//
// Three views of the same question — "when is this value needed next?" —
// shared by every consumer that used to answer it with an ad-hoc scan:
//
//   * UseTimeline     next-use distances over an ordered consumer sequence
//                     (BeladyScheduler's eviction oracle, the lint engine's
//                     dead-value detection).
//   * MoveRefCounts   forward reference counts over a move sequence
//                     (RepairSchedule's eviction policy).
//   * MoveLiveness    def/use chains and live ranges over a move sequence
//                     (the lint rules in lint.h).
//
// All three are pure functions of (graph, sequence): they never run the
// simulator and tolerate invalid schedules (redundant defs/kills fold into
// the current range; moves naming out-of-range nodes are ignored).
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "core/graph.h"
#include "core/move.h"
#include "core/schedule.h"
#include "core/types.h"

namespace wrbpg {

// "This value is never consumed again" / "no move holds this position".
inline constexpr std::size_t kNoUse = std::numeric_limits<std::size_t>::max();
inline constexpr std::size_t kNoMove = std::numeric_limits<std::size_t>::max();

// Per-node sorted consumption positions with amortized-O(1) next-use
// queries for nondecreasing query positions (each node keeps a cursor).
class UseTimeline {
 public:
  UseTimeline() = default;

  // Positions are compute-order slots: slot t consumes parents(order[t]).
  // This is the oracle Belady-style eviction ranks victims with.
  static UseTimeline OverComputeOrder(const Graph& graph,
                                      std::span<const NodeId> order);

  // Positions are move indices: move i consumes v when it stores v (M2
  // reads the red pebble) or computes a node with parent v (M3 reads every
  // parent). Loads and deletes consume nothing.
  static UseTimeline OverMoves(const Graph& graph, const Schedule& schedule);

  // First consumption of v at or after position t (kNoUse when exhausted).
  // Queries for a fixed v must have nondecreasing t; interleaving nodes is
  // fine. This matches every replay-shaped caller and keeps the whole
  // timeline O(total uses) instead of O(uses * queries).
  std::size_t NextUseAt(NodeId v, std::size_t t) const;

  std::span<const std::size_t> uses(NodeId v) const { return uses_[v]; }

 private:
  std::vector<std::vector<std::size_t>> uses_;
  mutable std::vector<std::size_t> cursor_;
};

// How often the remaining moves of a schedule mention each node — as a
// move's own node, or as a parent of a computed non-source node. Built from
// the full sequence, then decremented via Consume() as a replay advances;
// remaining(v) == 0 means the rest of the input never touches v.
class MoveRefCounts {
 public:
  MoveRefCounts(const Graph& graph, const Schedule& schedule);

  // The move at the replay cursor is no longer "future".
  void Consume(const Move& move);

  std::int64_t remaining(NodeId v) const { return counts_[v]; }

 private:
  void Count(const Move& move, std::int64_t delta);

  const Graph& graph_;
  std::vector<std::int64_t> counts_;
};

// One contiguous red-pebble residency of a value: defined at move `def`
// (an M1 or M3), read by `use_count` later moves (M2 of the node, M3 of a
// child), and released at move `kill` (an M4) or held to the end of the
// schedule (kill == kNoMove).
struct LiveRange {
  NodeId node = kInvalidNode;
  std::size_t def = kNoMove;
  MoveType def_type = MoveType::kLoad;
  std::size_t kill = kNoMove;
  std::size_t first_use = kNoUse;
  std::size_t last_use = kNoUse;
  std::size_t use_count = 0;
};

// Def/use chains per node over a move sequence. O(moves * avg-degree).
class MoveLiveness {
 public:
  MoveLiveness(const Graph& graph, const Schedule& schedule);

  // All ranges, ordered by def index.
  const std::vector<LiveRange>& ranges() const { return ranges_; }

  // Indices into ranges() for node v, ascending by def.
  std::span<const std::size_t> ranges_of(NodeId v) const { return by_node_[v]; }

  // The range of v whose residency covers move index i (def <= i and
  // i <= kill), or nullptr when v holds no red pebble at i.
  const LiveRange* RangeAt(NodeId v, std::size_t i) const;

 private:
  std::vector<LiveRange> ranges_;
  std::vector<std::vector<std::size_t>> by_node_;
};

}  // namespace wrbpg
