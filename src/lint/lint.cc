#include "lint/lint.h"

#include "ganalysis/ganalysis.h"

#include <algorithm>
#include <bit>
#include <iterator>
#include <memory>
#include <sstream>

namespace wrbpg {
namespace {

// Schedule-level rules first, then graph-level; ids are stable API.
constexpr LintRule kRules[] = {
    {"node-out-of-range", LintSeverity::kError,
     "move names a node outside the graph"},
    {"invalid-load", LintSeverity::kError,
     "M1 without a blue pebble to copy, or onto a node already red"},
    {"invalid-store", LintSeverity::kError,
     "M2 without a red pebble to copy, or onto a node already blue"},
    {"invalid-compute", LintSeverity::kError,
     "M3 on a source, onto a node already red, or with a non-red parent"},
    {"invalid-delete", LintSeverity::kError,
     "M4 with no red pebble to delete"},
    {"budget-exceeded", LintSeverity::kError,
     "weighted red pebble constraint violated (Definition 2.1)"},
    {"budget-infeasible", LintSeverity::kError,
     "a single compute's working set exceeds the budget (Proposition 2.3)"},
    {"non-topological-compute", LintSeverity::kError,
     "node computed before one of its parents was ever computed"},
    {"stop-condition-unmet", LintSeverity::kError,
     "a sink never receives a blue pebble"},
    {"dead-load", LintSeverity::kWarning,
     "loaded value never read before its delete or the end of the schedule"},
    {"dead-compute", LintSeverity::kWarning,
     "computed value never read and never stored"},
    {"dead-store", LintSeverity::kWarning,
     "stored value never reloaded and not a sink"},
    {"spill-churn", LintSeverity::kWarning,
     "value deleted then reloaded (load-after-delete thrash)"},
    {"redundant-recompute", LintSeverity::kInfo,
     "value recomputed after an earlier residency was dropped"},
    {"graph-irrelevant-node", LintSeverity::kInfo,
     "node has no path to any sink; every move on it is wasted"},
    {"graph-nonpositive-weight", LintSeverity::kInfo,
     "node weight is not positive, violating the Sec 2.1 model"},
    {"graph-isolated-node", LintSeverity::kInfo,
     "node is both a source and a sink"},
};

std::string NodeStr(NodeId v) { return "v" + std::to_string(v); }

// Range-maximum queries over the post-move occupancy series, built lazily:
// only spill-churn fix feasibility needs them.
class OccupancyRmq {
 public:
  explicit OccupancyRmq(const std::vector<Weight>& series) {
    const std::size_t n = series.size();
    const std::size_t levels =
        n == 0 ? 1 : static_cast<std::size_t>(std::bit_width(n));
    table_.assign(levels, series);
    for (std::size_t k = 1; k < table_.size(); ++k) {
      const std::size_t half = std::size_t{1} << (k - 1);
      for (std::size_t i = 0; i + (half << 1) <= n; ++i) {
        table_[k][i] = std::max(table_[k - 1][i], table_[k - 1][i + half]);
      }
    }
  }

  // Max over [lo, hi); requires lo < hi <= series size.
  Weight MaxIn(std::size_t lo, std::size_t hi) const {
    const std::size_t k =
        static_cast<std::size_t>(std::bit_width(hi - lo) - 1);
    return std::max(table_[k][lo], table_[k][hi - (std::size_t{1} << k)]);
  }

 private:
  std::vector<std::vector<Weight>> table_;
};

}  // namespace

const char* ToString(LintSeverity severity) {
  switch (severity) {
    case LintSeverity::kInfo: return "info";
    case LintSeverity::kWarning: return "warning";
    case LintSeverity::kError: return "error";
  }
  return "unknown";
}

std::span<const LintRule> AllLintRules() { return kRules; }

const LintRule* FindLintRule(std::string_view id) {
  for (const LintRule& rule : kRules) {
    if (rule.id == id) return &rule;
  }
  return nullptr;
}

bool LintResult::has_errors() const {
  return std::any_of(diagnostics.begin(), diagnostics.end(),
                     [](const LintDiagnostic& d) {
                       return d.severity == LintSeverity::kError;
                     });
}

std::size_t LintResult::count(LintSeverity severity) const {
  return static_cast<std::size_t>(
      std::count_if(diagnostics.begin(), diagnostics.end(),
                    [&](const LintDiagnostic& d) {
                      return d.severity == severity;
                    }));
}

const LintDiagnostic* LintResult::first_error() const {
  for (const LintDiagnostic& d : diagnostics) {
    if (d.severity == LintSeverity::kError) return &d;
  }
  return nullptr;
}

std::vector<LintDiagnostic> LintGraph(const Graph& graph) {
  return LintGraph(graph, graph.sinks());
}

std::vector<LintDiagnostic> LintGraph(const Graph& graph,
                                      std::span<const NodeId> outputs) {
  // The graph-level rules live in the static graph analyzer (ganalysis
  // "structure" pass registry); convert its facts into lint diagnostics so
  // the lint API, rule ids, and messages are unchanged.
  std::vector<LintDiagnostic> diags;
  for (const GraphFact& fact : RunStructureRules(graph, outputs)) {
    const LintRule* rule = FindLintRule(fact.pass_id);
    diags.push_back({.rule_id = rule != nullptr ? rule->id : fact.pass_id,
                     .severity = fact.severity == FactSeverity::kWarning
                                     ? LintSeverity::kWarning
                                     : LintSeverity::kInfo,
                     .node = fact.node,
                     .message = fact.message});
  }
  return diags;
}

LintResult LintSchedule(const Graph& graph, Weight budget,
                        const Schedule& schedule, const LintOptions& options) {
  LintResult result;
  if (options.graph_rules) result.diagnostics = LintGraph(graph);

  const NodeId n = graph.num_nodes();
  const std::size_t t = schedule.size();

  // --- Pass 1: abstract replay, mirroring the simulator's per-move checks
  // (same check order, same error node) but continuing past violations by
  // force-applying each move's nominal effect.
  std::vector<LintDiagnostic> replay_diags;
  auto error = [&](std::string_view rule, SimErrorCode code, std::size_t index,
                   NodeId node, std::string message) {
    replay_diags.push_back({.rule_id = rule,
                            .severity = LintSeverity::kError,
                            .move_index = index,
                            .node = node,
                            .sim_code = code,
                            .message = std::move(message)});
  };

  std::vector<unsigned char> red(n, 0);
  std::vector<unsigned char> blue(n, 0);
  std::vector<unsigned char> computed(n, 0);
  for (NodeId v : graph.sources()) blue[v] = 1;
  Weight red_weight = 0;
  bool over_budget = false;
  std::vector<Weight> occupancy(t, 0);  // after each move
  // In-range stores seen, for the dead-store rule.
  std::vector<std::pair<std::size_t, NodeId>> stores;

  for (std::size_t i = 0; i < t; ++i) {
    const Move& m = schedule[i];
    const NodeId v = m.node;
    if (v >= n) {
      error("node-out-of-range", SimErrorCode::kNodeOutOfRange, i, v,
            ToString(m) + ": node out of range");
      occupancy[i] = red_weight;
      continue;
    }
    const Weight w = graph.weight(v);
    switch (m.type) {
      case MoveType::kLoad:
        if (!blue[v]) {
          error("invalid-load", SimErrorCode::kLoadNoBlue, i, v,
                ToString(m) + ": no blue pebble to copy from");
        } else if (red[v]) {
          error("invalid-load", SimErrorCode::kLoadAlreadyRed, i, v,
                ToString(m) + ": node already holds a red pebble");
        }
        if (!red[v]) {
          red[v] = 1;
          red_weight += w;
        }
        break;
      case MoveType::kStore:
        if (!red[v]) {
          error("invalid-store", SimErrorCode::kStoreNoRed, i, v,
                ToString(m) + ": no red pebble to copy from");
        } else if (blue[v]) {
          error("invalid-store", SimErrorCode::kStoreAlreadyBlue, i, v,
                ToString(m) + ": node already holds a blue pebble");
        }
        blue[v] = 1;
        break;
      case MoveType::kCompute: {
        if (graph.is_source(v)) {
          error("invalid-compute", SimErrorCode::kComputeSource, i, v,
                ToString(m) +
                    ": source nodes are inputs and cannot be computed; "
                    "use M1");
        } else if (red[v]) {
          error("invalid-compute", SimErrorCode::kComputeAlreadyRed, i, v,
                ToString(m) + ": node already holds a red pebble");
        } else {
          for (NodeId p : graph.parents(v)) {
            if (!red[p]) {
              error("invalid-compute", SimErrorCode::kComputeParentNotRed, i,
                    p,
                    ToString(m) + ": parent " + NodeStr(p) +
                        " holds no red pebble");
              break;
            }
          }
        }
        if (!graph.is_source(v)) {
          // Derived rules, emitted after the replay mirror so the first
          // kError always matches the simulator's report exactly.
          for (NodeId p : graph.parents(v)) {
            if (!graph.is_source(p) && !computed[p]) {
              error("non-topological-compute",
                    SimErrorCode::kComputeParentNotRed, i, p,
                    ToString(m) + ": computed before its parent " +
                        NodeStr(p) + "; the compute order is not topological");
              break;
            }
          }
          Weight working = w;
          for (NodeId p : graph.parents(v)) working += graph.weight(p);
          if (working > budget) {
            error("budget-infeasible", SimErrorCode::kBudgetExceeded, i, v,
                  ToString(m) + ": working set " + std::to_string(working) +
                      " bits exceeds budget " + std::to_string(budget) +
                      "; by Proposition 2.3 no valid schedule contains this "
                      "compute");
          }
          computed[v] = 1;
        }
        if (!red[v]) {
          red[v] = 1;
          red_weight += w;
        }
        break;
      }
      case MoveType::kDelete:
        if (!red[v]) {
          error("invalid-delete", SimErrorCode::kDeleteNoRed, i, v,
                ToString(m) + ": no red pebble to delete");
        } else {
          red[v] = 0;
          red_weight -= w;
        }
        break;
    }
    if (m.type == MoveType::kStore && !graph.is_sink(v) &&
        !graph.is_source(v)) {
      stores.emplace_back(i, v);
    }
    if (red_weight > budget && !over_budget) {
      error("budget-exceeded", SimErrorCode::kBudgetExceeded, i, v,
            ToString(m) + ": weighted red pebble constraint violated (" +
                std::to_string(red_weight) + " > budget " +
                std::to_string(budget) + ")");
    }
    over_budget = red_weight > budget;
    occupancy[i] = red_weight;
  }

  // --- Pass 2: liveness-based waste rules over the def/use chains.
  const MoveLiveness live(graph, schedule);
  std::vector<LintDiagnostic> waste_diags;
  auto waste = [&](std::string_view rule, LintSeverity severity,
                   std::size_t index, NodeId node, Weight bits,
                   std::string message, LintFixIt fixit = {}) {
    waste_diags.push_back({.rule_id = rule,
                           .severity = severity,
                           .move_index = index,
                           .node = node,
                           .wasted_bits = bits,
                           .message = std::move(message),
                           .fixit = std::move(fixit)});
  };
  // Built on first demand; only spill-churn feasibility needs range maxima.
  std::unique_ptr<OccupancyRmq> rmq;

  // Load-def positions per node, for the dead-store reload query.
  std::vector<std::vector<std::size_t>> load_defs(n);
  for (const LiveRange& r : live.ranges()) {
    if (r.def_type == MoveType::kLoad) load_defs[r.node].push_back(r.def);
  }

  for (const LiveRange& r : live.ranges()) {
    const Weight w = graph.weight(r.node);
    if (r.use_count == 0) {
      LintFixIt fix{{r.def}};
      if (r.kill != kNoMove) fix.drop_moves.push_back(r.kill);
      if (r.def_type == MoveType::kLoad) {
        waste("dead-load", LintSeverity::kWarning, r.def, r.node, w,
              NodeStr(r.node) + " loaded but never read before " +
                  (r.kill == kNoMove ? std::string("the end of the schedule")
                                     : "its delete at move " +
                                           std::to_string(r.kill)) +
                  "; " + std::to_string(w) + " bits of I/O wasted",
              std::move(fix));
      } else {
        waste("dead-compute", LintSeverity::kWarning, r.def, r.node, 0,
              NodeStr(r.node) +
                  " computed but never read and never stored",
              std::move(fix));
      }
    }
  }

  for (NodeId v = 0; v < n; ++v) {
    const auto range_ids = live.ranges_of(v);
    for (std::size_t k = 1; k < range_ids.size(); ++k) {
      const LiveRange& prev = live.ranges()[range_ids[k - 1]];
      const LiveRange& r = live.ranges()[range_ids[k]];
      if (r.use_count == 0) continue;  // dead-load/dead-compute dominates
      const Weight w = graph.weight(v);
      if (r.def_type == MoveType::kLoad) {
        // Spill churn: the value was resident, dropped at prev.kill, and
        // fetched again. Keeping it resident is safe exactly when every
        // snapshot in between still has w bits of headroom.
        LintFixIt fix;
        bool fixable = false;
        if (prev.kill != kNoMove && prev.kill < r.def) {
          if (!rmq) rmq = std::make_unique<OccupancyRmq>(occupancy);
          fixable = rmq->MaxIn(prev.kill, r.def) + w <= budget;
          if (fixable) fix.drop_moves = {prev.kill, r.def};
        }
        waste("spill-churn",
              fixable ? LintSeverity::kWarning : LintSeverity::kInfo, r.def,
              v, w,
              NodeStr(v) + " deleted at move " + std::to_string(prev.kill) +
                  " and reloaded at move " + std::to_string(r.def) + "; " +
                  std::to_string(w) + " bits of I/O wasted" +
                  (fixable ? "" : " (no headroom to keep it resident)"),
              std::move(fix));
      } else {
        // Redundant recompute: attribute the loads that exist solely to
        // rebuild this value's parents.
        Weight reload_bits = 0;
        for (NodeId p : graph.parents(v)) {
          const LiveRange* pr = live.RangeAt(p, r.def);
          if (pr != nullptr && pr->def_type == MoveType::kLoad &&
              pr->use_count == 1) {
            reload_bits += graph.weight(p);
          }
        }
        waste("redundant-recompute", LintSeverity::kInfo, r.def, v,
              reload_bits,
              NodeStr(v) + " recomputed at move " + std::to_string(r.def) +
                  (reload_bits > 0
                       ? "; parent loads serving only this recompute waste " +
                             std::to_string(reload_bits) + " bits"
                       : ""));
      }
    }
  }

  for (const auto& [index, v] : stores) {
    const auto& defs = load_defs[v];
    const bool reloaded =
        std::upper_bound(defs.begin(), defs.end(), index) != defs.end();
    if (reloaded) continue;
    waste("dead-store", LintSeverity::kWarning, index, v, graph.weight(v),
          NodeStr(v) + " stored but never reloaded (and not a sink); " +
              std::to_string(graph.weight(v)) + " bits of I/O wasted",
          LintFixIt{{index}});
  }

  // --- Merge: replay diagnostics already move-ordered; waste diagnostics
  // sorted and appended so errors precede derived rules at equal indices.
  std::stable_sort(waste_diags.begin(), waste_diags.end(),
                   [](const LintDiagnostic& a, const LintDiagnostic& b) {
                     return a.move_index < b.move_index;
                   });
  std::vector<LintDiagnostic> merged;
  merged.reserve(replay_diags.size() + waste_diags.size());
  std::merge(std::make_move_iterator(replay_diags.begin()),
             std::make_move_iterator(replay_diags.end()),
             std::make_move_iterator(waste_diags.begin()),
             std::make_move_iterator(waste_diags.end()),
             std::back_inserter(merged),
             [](const LintDiagnostic& a, const LintDiagnostic& b) {
               return a.move_index < b.move_index;
             });
  for (LintDiagnostic& d : merged) {
    result.diagnostics.push_back(std::move(d));
  }

  // --- End-of-schedule: the stopping condition, in the simulator's sink
  // order so the first report matches Simulate() exactly.
  for (NodeId s : graph.sinks()) {
    if (!blue[s]) {
      result.diagnostics.push_back(
          {.rule_id = "stop-condition-unmet",
           .severity = LintSeverity::kError,
           .move_index = t,
           .node = s,
           .sim_code = SimErrorCode::kStopConditionUnmet,
           .message = "stopping condition unmet: sink " + NodeStr(s) +
                      " holds no blue pebble"});
    }
  }

  for (const LintDiagnostic& d : result.diagnostics) {
    result.wasted_bits_total += d.wasted_bits;
  }
  return result;
}

std::string RenderLintResult(const LintResult& result) {
  std::ostringstream out;
  for (const LintDiagnostic& d : result.diagnostics) {
    out << ToString(d.severity) << "[" << d.rule_id << "]";
    if (d.move_index != kNoMove) out << " move " << d.move_index;
    if (d.node != kInvalidNode) out << " (v" << d.node << ")";
    out << ": " << d.message;
    if (!d.fixit.empty()) {
      out << " [fix: drop " << d.fixit.drop_moves.size() << " move"
          << (d.fixit.drop_moves.size() == 1 ? "" : "s") << "]";
    }
    out << "\n";
  }
  out << result.count(LintSeverity::kError) << " error(s), "
      << result.count(LintSeverity::kWarning) << " warning(s), "
      << result.count(LintSeverity::kInfo) << " info(s); "
      << result.wasted_bits_total << " wasted I/O bits\n";
  return out.str();
}

namespace {

void JsonEscape(std::ostringstream& out, std::string_view s) {
  out << '"';
  for (const char c : s) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      case '\t': out << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out << "\\u00" << "0123456789abcdef"[(c >> 4) & 0xf]
              << "0123456789abcdef"[c & 0xf];
        } else {
          out << c;
        }
    }
  }
  out << '"';
}

}  // namespace

std::string LintResultToJson(const LintResult& result) {
  std::ostringstream out;
  out << "{\"errors\":" << result.count(LintSeverity::kError)
      << ",\"warnings\":" << result.count(LintSeverity::kWarning)
      << ",\"infos\":" << result.count(LintSeverity::kInfo)
      << ",\"wasted_bits\":" << result.wasted_bits_total
      << ",\"diagnostics\":[";
  bool first = true;
  for (const LintDiagnostic& d : result.diagnostics) {
    if (!first) out << ",";
    first = false;
    out << "{\"rule\":";
    JsonEscape(out, d.rule_id);
    out << ",\"severity\":";
    JsonEscape(out, ToString(d.severity));
    out << ",\"move\":";
    if (d.move_index == kNoMove) {
      out << "null";
    } else {
      out << d.move_index;
    }
    out << ",\"node\":";
    if (d.node == kInvalidNode) {
      out << "null";
    } else {
      out << d.node;
    }
    out << ",\"wasted_bits\":" << d.wasted_bits << ",\"sim_code\":";
    JsonEscape(out, ToString(d.sim_code));
    out << ",\"message\":";
    JsonEscape(out, d.message);
    out << ",\"fix_drop_moves\":[";
    for (std::size_t i = 0; i < d.fixit.drop_moves.size(); ++i) {
      if (i > 0) out << ",";
      out << d.fixit.drop_moves[i];
    }
    out << "]}";
  }
  out << "]}";
  return out.str();
}

}  // namespace wrbpg
