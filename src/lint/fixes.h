// Verified application of lint fix-its.
//
// ApplyLintFixes runs the linter, applies every kWarning fix-it (each a
// set of moves to drop), and iterates to a fixpoint: removing a dead store
// can turn the load that fed it into a dead load, and so on. Every
// iteration is re-verified through the simulator — the returned schedule
// is guaranteed valid with cost <= the input's cost, or the input is
// returned unchanged with a diagnostic. Inputs the linter flags as
// erroneous are refused (use robust/repair.h to make them valid first).
#pragma once

#include <string>

#include "core/graph.h"
#include "core/schedule.h"
#include "core/simulator.h"
#include "core/types.h"
#include "lint/lint.h"

namespace wrbpg {

struct LintFixResult {
  // False when the input was invalid or erroneous; `message` says why and
  // `schedule` echoes the input.
  bool ok = false;
  bool changed = false;
  std::string message;
  Schedule schedule;
  Weight cost_before = 0;
  Weight cost_after = 0;
  std::size_t fixes_applied = 0;
  std::size_t iterations = 0;
  SimResult verification;  // of the returned schedule
};

struct LintFixOptions {
  // Fixpoint iteration cap; each iteration re-lints and re-verifies.
  std::size_t max_iterations = 32;
};

LintFixResult ApplyLintFixes(const Graph& graph, Weight budget,
                             const Schedule& schedule,
                             const LintFixOptions& options = {});

}  // namespace wrbpg
