// Moves of the red-blue pebble game (Sec 2).
//
//   M1 kLoad    copy to fast memory  (red pebble onto a node holding blue)
//   M2 kStore   copy to slow memory  (blue pebble onto a node holding red)
//   M3 kCompute perform a computation (red pebble when all parents are red)
//   M4 kDelete  delete a red pebble  (blue pebbles are never deleted)
#pragma once

#include <string>

#include "core/types.h"

namespace wrbpg {

enum class MoveType : std::uint8_t {
  kLoad = 0,     // M1
  kStore = 1,    // M2
  kCompute = 2,  // M3
  kDelete = 3,   // M4
};

struct Move {
  MoveType type;
  NodeId node;

  friend bool operator==(const Move&, const Move&) = default;
};

constexpr Move Load(NodeId v) { return {MoveType::kLoad, v}; }
constexpr Move Store(NodeId v) { return {MoveType::kStore, v}; }
constexpr Move Compute(NodeId v) { return {MoveType::kCompute, v}; }
constexpr Move Delete(NodeId v) { return {MoveType::kDelete, v}; }

// "M1(v3)" style rendering, matching the paper's move notation.
std::string ToString(const Move& move);
const char* ToString(MoveType type);

}  // namespace wrbpg
