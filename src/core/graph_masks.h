// Word-span move-legality masks shared by the exact-search hot path and
// the simulator (DESIGN.md §14).
//
// Every WRBPG move predicate is a set operation over the (red, blue)
// configuration and a per-graph constant: the loadable set is
// `blue & ~red`, the storable set `red & ~blue`, the deletable set `red`,
// and the computable set is `~red & ~sources` filtered by
// `parents(v) ⊆ red`. GraphMasks precomputes the per-graph constants as
// arrays of 64-bit words (node v lives in word v/64, bit v%64) so those
// predicates become word-parallel AND/ANDNOT ops plus ctz iteration —
// no per-node branching. One instance serves graphs of any width; the
// packed (≤32-node) representation reads word 0 and truncates.
//
// Built once per Graph, read-only afterwards: safe to share across
// threads.
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/graph.h"
#include "core/types.h"

namespace wrbpg {

class GraphMasks {
 public:
  // `with_children` additionally builds per-node child masks (used by the
  // heuristic's M4 delta test; the simulator does not need them).
  explicit GraphMasks(const Graph& graph, bool with_children = false)
      : words_((static_cast<std::size_t>(graph.num_nodes()) + 63) / 64) {
    if (words_ == 0) words_ = 1;
    const NodeId n = graph.num_nodes();
    sources_.assign(words_, 0);
    sinks_.assign(words_, 0);
    nodes_.assign(words_, 0);
    parents_.assign(words_ * n, 0);
    if (with_children) children_.assign(words_ * n, 0);
    for (NodeId v = 0; v < n; ++v) {
      nodes_[v / 64] |= 1ull << (v % 64);
      if (graph.is_source(v)) sources_[v / 64] |= 1ull << (v % 64);
      if (graph.is_sink(v)) sinks_[v / 64] |= 1ull << (v % 64);
      for (NodeId p : graph.parents(v)) {
        parents_[words_ * v + p / 64] |= 1ull << (p % 64);
        if (with_children) children_[words_ * p + v / 64] |= 1ull << (v % 64);
      }
    }
  }

  std::size_t words() const { return words_; }
  const std::uint64_t* sources() const { return sources_.data(); }
  const std::uint64_t* sinks() const { return sinks_.data(); }
  // All valid node ids set: masks out the unused high bits of the last word.
  const std::uint64_t* nodes() const { return nodes_.data(); }
  const std::uint64_t* parents_of(NodeId v) const {
    return &parents_[words_ * v];
  }
  bool has_children() const { return !children_.empty(); }
  const std::uint64_t* children_of(NodeId v) const {
    return &children_[words_ * v];
  }

  bool is_source(NodeId v) const {
    return ((sources_[v / 64] >> (v % 64)) & 1) != 0;
  }

  // True iff every parent of v is set in the word-span mask `red`.
  bool ParentsSubsetOf(NodeId v, const std::uint64_t* red) const {
    const std::uint64_t* p = parents_of(v);
    for (std::size_t w = 0; w < words_; ++w) {
      if ((p[w] & ~red[w]) != 0) return false;
    }
    return true;
  }

  // Iterates the set bits of an n-word mask in ascending node order —
  // the order the determinism contract's canonical schedule relies on.
  template <typename Fn>
  static void ForEachSetBit(const std::uint64_t* mask, std::size_t words,
                            Fn&& fn) {
    for (std::size_t w = 0; w < words; ++w) {
      for (std::uint64_t m = mask[w]; m != 0; m &= m - 1) {
        fn(static_cast<NodeId>(
            w * 64 + static_cast<std::size_t>(std::countr_zero(m))));
      }
    }
  }

  static bool AnySet(const std::uint64_t* mask, std::size_t words) {
    for (std::size_t w = 0; w < words; ++w) {
      if (mask[w] != 0) return true;
    }
    return false;
  }

  static bool AnyIntersect(const std::uint64_t* a, const std::uint64_t* b,
                           std::size_t words) {
    for (std::size_t w = 0; w < words; ++w) {
      if ((a[w] & b[w]) != 0) return true;
    }
    return false;
  }

 private:
  std::size_t words_;
  std::vector<std::uint64_t> sources_;
  std::vector<std::uint64_t> sinks_;
  std::vector<std::uint64_t> nodes_;
  std::vector<std::uint64_t> parents_;   // words_ words per node
  std::vector<std::uint64_t> children_;  // words_ words per node (optional)
};

}  // namespace wrbpg
