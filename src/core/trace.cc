#include "core/trace.h"

#include <algorithm>
#include <sstream>

#include "core/simulator.h"

namespace wrbpg {

OccupancyTrace TraceOccupancy(const Graph& graph, Weight budget,
                              const Schedule& schedule) {
  OccupancyTrace trace;
  trace.occupancy_bits.reserve(schedule.size());
  const SimResult sim = Simulate(
      graph, budget, schedule, {},
      [&](std::size_t, const Move&, Weight red_weight) {
        trace.occupancy_bits.push_back(red_weight);
      });
  if (!sim.valid) {
    trace.error = sim.error;
    trace.occupancy_bits.clear();
    return trace;
  }
  trace.peak_bits = sim.peak_red_weight;
  for (std::size_t i = 0; i < trace.occupancy_bits.size(); ++i) {
    if (trace.occupancy_bits[i] == trace.peak_bits) {
      trace.peak_index = i;
      break;
    }
  }
  trace.ok = true;
  return trace;
}

std::string RenderOccupancy(const OccupancyTrace& trace, Weight budget,
                            int width, int height) {
  std::ostringstream out;
  if (!trace.ok || trace.occupancy_bits.empty()) {
    out << "(no occupancy data)\n";
    return out.str();
  }
  const std::size_t t = trace.occupancy_bits.size();
  const std::size_t cols = std::min<std::size_t>(
      t, static_cast<std::size_t>(std::max(1, width)));
  // Downsample by maximum within each column so peaks never vanish.
  std::vector<Weight> column_peaks(cols, 0);
  for (std::size_t i = 0; i < t; ++i) {
    const std::size_t c = i * cols / t;
    column_peaks[c] = std::max(column_peaks[c], trace.occupancy_bits[i]);
  }
  // Peak position is reported 1-based, consistent with "of <move count>"
  // (peak_index itself stays a 0-based array index).
  out << "fast-memory occupancy, peak " << trace.peak_bits << "/" << budget
      << " bits at move " << trace.peak_index + 1 << " of " << t << "\n";
  const int rows = std::max(1, height);
  // Row thresholds use ceiling division, decomposed so budget * row can
  // never overflow Weight (budget may approach kInfiniteCost): the bottom
  // row's threshold is >= 1 whenever the budget is positive, so a column
  // only earns '#' for occupancy it actually has. Truncating division put
  // threshold 0 on every row with budget * row < height, painting '#'
  // over zero-occupancy columns (an all-'#' chart at budget 0).
  const Weight div = budget / rows;
  const Weight rem = budget % rows;
  for (int row = rows; row >= 1; --row) {
    const Weight threshold = div * row + (rem * row + rows - 1) / rows;
    out << (row == rows ? "budget |" : "       |");
    for (std::size_t c = 0; c < cols; ++c) {
      const bool filled = column_peaks[c] > 0 && column_peaks[c] >= threshold;
      out << (filled ? '#' : ' ');
    }
    out << "|\n";
  }
  out << "       +" << std::string(cols, '-') << "+\n";
  return out.str();
}

}  // namespace wrbpg
