#include "core/trace.h"

#include <algorithm>
#include <sstream>

#include "core/simulator.h"

namespace wrbpg {

OccupancyTrace TraceOccupancy(const Graph& graph, Weight budget,
                              const Schedule& schedule) {
  OccupancyTrace trace;
  trace.occupancy_bits.reserve(schedule.size());
  const SimResult sim = Simulate(
      graph, budget, schedule, {},
      [&](std::size_t, const Move&, Weight red_weight) {
        trace.occupancy_bits.push_back(red_weight);
      });
  if (!sim.valid) {
    trace.error = sim.error;
    trace.occupancy_bits.clear();
    return trace;
  }
  trace.peak_bits = sim.peak_red_weight;
  for (std::size_t i = 0; i < trace.occupancy_bits.size(); ++i) {
    if (trace.occupancy_bits[i] == trace.peak_bits) {
      trace.peak_index = i;
      break;
    }
  }
  trace.ok = true;
  return trace;
}

std::string RenderOccupancy(const OccupancyTrace& trace, Weight budget,
                            int width, int height) {
  std::ostringstream out;
  if (!trace.ok || trace.occupancy_bits.empty()) {
    out << "(no occupancy data)\n";
    return out.str();
  }
  const std::size_t t = trace.occupancy_bits.size();
  const std::size_t cols = std::min<std::size_t>(
      t, static_cast<std::size_t>(std::max(1, width)));
  // Downsample by maximum within each column so peaks never vanish.
  std::vector<Weight> column_peaks(cols, 0);
  for (std::size_t i = 0; i < t; ++i) {
    const std::size_t c = i * cols / t;
    column_peaks[c] = std::max(column_peaks[c], trace.occupancy_bits[i]);
  }
  out << "fast-memory occupancy, peak " << trace.peak_bits << "/" << budget
      << " bits at move " << trace.peak_index << " of " << t << "\n";
  for (int row = height; row >= 1; --row) {
    const Weight threshold =
        budget * row / height;
    out << (row == height ? "budget |" : "       |");
    for (std::size_t c = 0; c < cols; ++c) {
      out << (column_peaks[c] >= threshold ? '#' : ' ');
    }
    out << "|\n";
  }
  out << "       +" << std::string(cols, '-') << "+\n";
  return out.str();
}

}  // namespace wrbpg
