// wrbpg-bin-v1: compact binary (de)serialization for graphs and
// schedules — the hot-path replacement for the text round-trip of
// core/serialize.h (normative spec: docs/FORMATS.md).
//
// Layout (all multi-byte integers little-endian):
//
//   header   "WBIN" (4 bytes) | u8 version = 1 | u8 kind | u16 reserved = 0
//   payload  kind 1 (graph):
//              u32 num_nodes | u32 num_edges
//              num_nodes × i64 weight            (each > 0)
//              u8 names_present (0|1)
//              [num_nodes × (u32 len | len bytes)]   when names_present
//              num_edges × (u32 u | u32 v)
//            kind 2 (schedule):
//              u32 num_moves
//              num_moves × (u8 move_type | u32 node)   (type 0..3 = M1..M4)
//   footer   u64 FNV-1a-64 checksum over header + payload
//
// Decoding is strict: bad magic/version/kind, any truncation, trailing
// bytes, a checksum mismatch, or any model violation (non-positive
// weight, out-of-range endpoint, self-loop, duplicate edge, cycle) is a
// structured parse error, never UB — declared counts are validated
// against the remaining byte budget BEFORE any allocation, so a hostile
// 50-byte input claiming 2^31 nodes is rejected without touching memory.
// Graph decoding runs the same GraphBuilder validation as the text
// parser, so the two formats accept exactly the same set of graphs.
#pragma once

#include <string>
#include <string_view>

#include "core/graph.h"
#include "core/schedule.h"
#include "core/serialize.h"

namespace wrbpg {

inline constexpr std::string_view kBinMagic = "WBIN";
inline constexpr std::uint8_t kBinVersion = 1;
inline constexpr std::uint8_t kBinKindGraph = 1;
inline constexpr std::uint8_t kBinKindSchedule = 2;

// True when `bytes` starts with the wrbpg-bin-v1 magic — how tools
// decide between the binary and the text parser for a graph argument.
bool LooksLikeBinary(std::string_view bytes);

// Encoders. Output always round-trips through the matching parser.
std::string ToBinary(const Graph& graph);
std::string ToBinary(const Schedule& schedule);

// Decoders; result types shared with the text parsers (serialize.h).
// `error` is a one-line structured reason on failure ("offset N: ...").
GraphParseResult ParseGraphBinary(std::string_view bytes);
ScheduleParseResult ParseScheduleBinary(std::string_view bytes);

}  // namespace wrbpg
