#include "core/compose.h"

#include <set>

#include "core/graph_builder.h"

namespace wrbpg {

Composition ComposeSequential(const Graph& producer, const Graph& consumer,
                              const std::vector<Binding>& bindings) {
  Composition result;
  auto fail = [&](std::string message) {
    result.error = std::move(message);
    return result;
  };

  std::set<NodeId> bound_sources;
  for (const Binding& binding : bindings) {
    if (binding.producer_sink >= producer.num_nodes() ||
        !producer.is_sink(binding.producer_sink)) {
      return fail("binding producer node " +
                  std::to_string(binding.producer_sink) +
                  " is not a producer sink");
    }
    if (binding.consumer_source >= consumer.num_nodes() ||
        !consumer.is_source(binding.consumer_source)) {
      return fail("binding consumer node " +
                  std::to_string(binding.consumer_source) +
                  " is not a consumer source");
    }
    if (!bound_sources.insert(binding.consumer_source).second) {
      return fail("consumer source " +
                  std::to_string(binding.consumer_source) + " bound twice");
    }
    if (producer.weight(binding.producer_sink) !=
        consumer.weight(binding.consumer_source)) {
      return fail("weight mismatch on binding: producer sink carries " +
                  std::to_string(producer.weight(binding.producer_sink)) +
                  " bits, consumer source " +
                  std::to_string(consumer.weight(binding.consumer_source)));
    }
  }

  GraphBuilder builder;
  result.producer_to_composite.resize(producer.num_nodes());
  for (NodeId v = 0; v < producer.num_nodes(); ++v) {
    result.producer_to_composite[v] = builder.AddNode(producer.weight(v),
                                                      producer.name(v));
  }
  result.consumer_to_composite.assign(consumer.num_nodes(), kInvalidNode);
  for (const Binding& binding : bindings) {
    result.consumer_to_composite[binding.consumer_source] =
        result.producer_to_composite[binding.producer_sink];
  }
  for (NodeId v = 0; v < consumer.num_nodes(); ++v) {
    if (result.consumer_to_composite[v] != kInvalidNode) continue;
    result.consumer_to_composite[v] =
        builder.AddNode(consumer.weight(v), consumer.name(v));
  }

  for (NodeId v = 0; v < producer.num_nodes(); ++v) {
    for (NodeId c : producer.children(v)) {
      builder.AddEdge(result.producer_to_composite[v],
                      result.producer_to_composite[c]);
    }
  }
  for (NodeId v = 0; v < consumer.num_nodes(); ++v) {
    for (NodeId c : consumer.children(v)) {
      builder.AddEdge(result.consumer_to_composite[v],
                      result.consumer_to_composite[c]);
    }
  }

  auto built = builder.Build();
  if (!built.ok) return fail("composite graph invalid: " + built.error);
  result.graph = std::move(built.graph);
  result.ok = true;
  return result;
}

Schedule TranslateSchedule(const Schedule& schedule,
                           const std::vector<NodeId>& to_composite) {
  Schedule out;
  for (const Move& move : schedule) {
    out.Append({move.type, to_composite[move.node]});
  }
  return out;
}

Schedule StitchSchedules(const Composition& composition,
                         const Schedule& producer_schedule,
                         const Schedule& consumer_schedule) {
  Schedule out =
      TranslateSchedule(producer_schedule, composition.producer_to_composite);
  out.Append(
      TranslateSchedule(consumer_schedule, composition.consumer_to_composite));
  return out;
}

}  // namespace wrbpg
