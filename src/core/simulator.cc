#include "core/simulator.h"

#include <algorithm>

namespace wrbpg {
namespace {

std::string NodeStr(NodeId v) { return "v" + std::to_string(v); }

}  // namespace

const char* ToString(SimErrorCode code) {
  switch (code) {
    case SimErrorCode::kNone: return "none";
    case SimErrorCode::kNodeOutOfRange: return "node-out-of-range";
    case SimErrorCode::kLoadNoBlue: return "load-no-blue";
    case SimErrorCode::kLoadAlreadyRed: return "load-already-red";
    case SimErrorCode::kStoreNoRed: return "store-no-red";
    case SimErrorCode::kStoreAlreadyBlue: return "store-already-blue";
    case SimErrorCode::kComputeSource: return "compute-source";
    case SimErrorCode::kComputeAlreadyRed: return "compute-already-red";
    case SimErrorCode::kComputeParentNotRed: return "compute-parent-not-red";
    case SimErrorCode::kDeleteNoRed: return "delete-no-red";
    case SimErrorCode::kBudgetExceeded: return "budget-exceeded";
    case SimErrorCode::kInitialRedOverBudget: return "initial-red-over-budget";
    case SimErrorCode::kStopConditionUnmet: return "stop-condition-unmet";
    case SimErrorCode::kReuseConditionUnmet: return "reuse-condition-unmet";
  }
  return "unknown";
}

std::optional<SimErrorCode> SimErrorCodeFromString(std::string_view name) {
  for (const SimErrorCode code : kAllSimErrorCodes) {
    if (name == ToString(code)) return code;
  }
  return std::nullopt;
}

SimResult Simulate(const Graph& graph, Weight budget, const Schedule& schedule,
                   const SimOptions& options, const SimObserver& observer) {
  SimResult result;
  const NodeId n = graph.num_nodes();

  std::vector<unsigned char> red(n, 0);
  std::vector<unsigned char> blue(n, 0);
  for (NodeId v : graph.sources()) blue[v] = 1;
  for (NodeId v : options.initial_blue) blue[v] = 1;

  Weight red_weight = 0;

  auto fail = [&](std::size_t index, SimErrorCode code, NodeId node,
                  std::string message) {
    result.valid = false;
    result.error = std::move(message);
    result.error_index = index;
    result.code = code;
    result.error_node = node;
    return result;
  };

  for (NodeId v : options.initial_red) {
    if (!red[v]) {
      red[v] = 1;
      red_weight += graph.weight(v);
    }
  }
  if (red_weight > budget) {
    return fail(0, SimErrorCode::kInitialRedOverBudget, kInvalidNode,
                "initial red pebbles already exceed the budget");
  }
  result.peak_red_weight = red_weight;

  for (std::size_t i = 0; i < schedule.size(); ++i) {
    const Move& m = schedule[i];
    const NodeId v = m.node;
    if (v >= n) {
      return fail(i, SimErrorCode::kNodeOutOfRange, v,
                  ToString(m) + ": node out of range");
    }
    const Weight w = graph.weight(v);
    switch (m.type) {
      case MoveType::kLoad:  // M1: blue -> both
        if (!blue[v]) {
          return fail(i, SimErrorCode::kLoadNoBlue, v,
                      ToString(m) + ": no blue pebble to copy from");
        }
        if (red[v]) {
          return fail(i, SimErrorCode::kLoadAlreadyRed, v,
                      ToString(m) + ": node already holds a red pebble");
        }
        red[v] = 1;
        red_weight += w;
        result.cost += w;
        ++result.loads;
        break;
      case MoveType::kStore:  // M2: red -> both
        if (!red[v]) {
          return fail(i, SimErrorCode::kStoreNoRed, v,
                      ToString(m) + ": no red pebble to copy from");
        }
        if (blue[v]) {
          return fail(i, SimErrorCode::kStoreAlreadyBlue, v,
                      ToString(m) + ": node already holds a blue pebble");
        }
        blue[v] = 1;
        result.cost += w;
        ++result.stores;
        break;
      case MoveType::kCompute: {  // M3: all parents red -> add red
        if (graph.is_source(v)) {
          return fail(i, SimErrorCode::kComputeSource, v,
                      ToString(m) +
                          ": source nodes are inputs and cannot be "
                          "computed; use M1");
        }
        if (red[v]) {
          return fail(i, SimErrorCode::kComputeAlreadyRed, v,
                      ToString(m) + ": node already holds a red pebble");
        }
        for (NodeId p : graph.parents(v)) {
          if (!red[p]) {
            return fail(i, SimErrorCode::kComputeParentNotRed, p,
                        ToString(m) + ": parent " + NodeStr(p) +
                            " holds no red pebble");
          }
        }
        red[v] = 1;
        red_weight += w;
        ++result.computes;
        break;
      }
      case MoveType::kDelete:  // M4: remove red
        if (!red[v]) {
          return fail(i, SimErrorCode::kDeleteNoRed, v,
                      ToString(m) + ": no red pebble to delete");
        }
        red[v] = 0;
        red_weight -= w;
        ++result.deletes;
        break;
    }
    if (red_weight > budget) {
      return fail(i, SimErrorCode::kBudgetExceeded, v,
                  ToString(m) + ": weighted red pebble constraint violated"
                                " (" +
                      std::to_string(red_weight) + " > budget " +
                      std::to_string(budget) + ")");
    }
    result.peak_red_weight = std::max(result.peak_red_weight, red_weight);
    if (observer) observer(i, m, red_weight);
  }

  result.stop_condition_met =
      std::all_of(graph.sinks().begin(), graph.sinks().end(),
                  [&](NodeId s) { return blue[s] != 0; });
  if (options.require_stop_condition && !result.stop_condition_met) {
    const auto unmet =
        std::find_if(graph.sinks().begin(), graph.sinks().end(),
                     [&](NodeId s) { return blue[s] == 0; });
    return fail(schedule.size(), SimErrorCode::kStopConditionUnmet, *unmet,
                "stopping condition unmet: some sink holds no blue pebble");
  }
  for (NodeId v : options.required_red_at_end) {
    if (!red[v]) {
      return fail(schedule.size(), SimErrorCode::kReuseConditionUnmet, v,
                  "reuse condition unmet: v" + std::to_string(v) +
                      " holds no red pebble at the end");
    }
  }

  result.final_red_weight = red_weight;
  result.valid = true;
  return result;
}

}  // namespace wrbpg
