#include "core/simulator.h"

#include <algorithm>
#include <array>
#include <bit>
#include <cstdint>

#include "core/graph_masks.h"
#include "obs/metrics.h"
#include "obs/span.h"

namespace wrbpg {
namespace {

// One counter per rule-violation code ("sim.rule.load-no-blue", ...),
// registered once and indexed by the enum value.
obs::MetricId RuleCounter(SimErrorCode code) {
  static const auto ids = [] {
    std::array<obs::MetricId, std::size(kAllSimErrorCodes)> out{};
    for (const SimErrorCode c : kAllSimErrorCodes) {
      out[static_cast<std::size_t>(c)] =
          obs::RegisterCounter(std::string("sim.rule.") + ToString(c));
    }
    return out;
  }();
  return ids[static_cast<std::size_t>(code)];
}

// Observability totals, recorded once per Simulate() call (never inside
// the per-move loop, so the replay path's throughput is untouched).
void RecordSimMetrics(const SimResult& result, std::size_t moves_applied) {
  static const obs::Counter runs("sim.runs");
  static const obs::Counter moves("sim.moves");
  static const obs::Counter loads("sim.loads");
  static const obs::Counter stores("sim.stores");
  static const obs::Counter computes("sim.computes");
  static const obs::Counter deletes("sim.deletes");
  static const obs::Counter invalid("sim.invalid");
  static const obs::Gauge peak("sim.peak_red_weight");
  runs.Add(1);
  moves.Add(moves_applied);
  loads.Add(result.loads);
  stores.Add(result.stores);
  computes.Add(result.computes);
  deletes.Add(result.deletes);
  if (!result.valid) {
    invalid.Add(1);
    obs::Add(RuleCounter(result.code), 1);
  }
  peak.Max(static_cast<std::uint64_t>(
      std::max<Weight>(result.peak_red_weight, 0)));
}

std::string NodeStr(NodeId v) {
  std::string s = "v";
  s += std::to_string(v);
  return s;
}

// True when the diagnostic describes a specific move (and should carry
// the "M1(v3): " prefix), as opposed to a whole-schedule condition.
bool IsPerMoveError(SimErrorCode code) {
  switch (code) {
    case SimErrorCode::kNone:
    case SimErrorCode::kInitialRedOverBudget:
    case SimErrorCode::kStopConditionUnmet:
    case SimErrorCode::kReuseConditionUnmet:
      return false;
    default:
      return true;
  }
}

}  // namespace

const char* ToString(SimErrorCode code) {
  switch (code) {
    case SimErrorCode::kNone: return "none";
    case SimErrorCode::kNodeOutOfRange: return "node-out-of-range";
    case SimErrorCode::kLoadNoBlue: return "load-no-blue";
    case SimErrorCode::kLoadAlreadyRed: return "load-already-red";
    case SimErrorCode::kStoreNoRed: return "store-no-red";
    case SimErrorCode::kStoreAlreadyBlue: return "store-already-blue";
    case SimErrorCode::kComputeSource: return "compute-source";
    case SimErrorCode::kComputeAlreadyRed: return "compute-already-red";
    case SimErrorCode::kComputeParentNotRed: return "compute-parent-not-red";
    case SimErrorCode::kDeleteNoRed: return "delete-no-red";
    case SimErrorCode::kBudgetExceeded: return "budget-exceeded";
    case SimErrorCode::kInitialRedOverBudget: return "initial-red-over-budget";
    case SimErrorCode::kStopConditionUnmet: return "stop-condition-unmet";
    case SimErrorCode::kReuseConditionUnmet: return "reuse-condition-unmet";
  }
  return "unknown";
}

std::optional<SimErrorCode> SimErrorCodeFromString(std::string_view name) {
  for (const SimErrorCode code : kAllSimErrorCodes) {
    if (name == ToString(code)) return code;
  }
  return std::nullopt;
}

SimResult Simulate(const Graph& graph, Weight budget, const Schedule& schedule,
                   const SimOptions& options, const SimObserver& observer) {
  const obs::ScopedSpan span("simulate");
  SimResult result;
  const NodeId n = graph.num_nodes();

  // Word-span (red, blue) masks with the same layout the exact search
  // and the heuristic use (core/graph_masks.h): node v lives in word
  // v/64, bit v%64. Every per-move legality test below is one masked
  // word read; the M3 parent check is a word-parallel subset test.
  const GraphMasks masks(graph);
  const std::size_t words = masks.words();
  std::vector<std::uint64_t> red(words, 0);
  std::vector<std::uint64_t> blue(masks.sources(),
                                  masks.sources() + words);
  for (NodeId v : options.initial_blue) {
    if (v < n) blue[v / 64] |= 1ull << (v % 64);
  }
  const auto test = [](const std::vector<std::uint64_t>& m, NodeId v) {
    return ((m[v / 64] >> (v % 64)) & 1) != 0;
  };

  Weight red_weight = 0;

  // The single cold path: every diagnostic message is composed here, so
  // the per-move switch below stays string-free on valid schedules.
  auto fail = [&](std::size_t index, SimErrorCode code, NodeId node) {
    result.valid = false;
    result.error_index = index;
    result.code = code;
    result.error_node = node;
    std::string message;
    if (IsPerMoveError(code) && index < schedule.size()) {
      message = ToString(schedule[index]) + ": ";
    }
    switch (code) {
      case SimErrorCode::kNone:
        break;
      case SimErrorCode::kNodeOutOfRange:
        message += "node out of range";
        break;
      case SimErrorCode::kLoadNoBlue:
        message += "no blue pebble to copy from";
        break;
      case SimErrorCode::kLoadAlreadyRed:
      case SimErrorCode::kComputeAlreadyRed:
        message += "node already holds a red pebble";
        break;
      case SimErrorCode::kStoreNoRed:
        message += "no red pebble to copy from";
        break;
      case SimErrorCode::kStoreAlreadyBlue:
        message += "node already holds a blue pebble";
        break;
      case SimErrorCode::kComputeSource:
        message +=
            "source nodes are inputs and cannot be computed; use M1";
        break;
      case SimErrorCode::kComputeParentNotRed:
        message += "parent " + NodeStr(node) + " holds no red pebble";
        break;
      case SimErrorCode::kDeleteNoRed:
        message += "no red pebble to delete";
        break;
      case SimErrorCode::kBudgetExceeded:
        message += "weighted red pebble constraint violated (" +
                   std::to_string(red_weight) + " > budget " +
                   std::to_string(budget) + ")";
        break;
      case SimErrorCode::kInitialRedOverBudget:
        message += "initial red pebbles already exceed the budget";
        break;
      case SimErrorCode::kStopConditionUnmet:
        message += "stopping condition unmet: some sink holds no blue pebble";
        break;
      case SimErrorCode::kReuseConditionUnmet:
        message += "reuse condition unmet: " + NodeStr(node) +
                   " holds no red pebble at the end";
        break;
    }
    result.error = std::move(message);
    RecordSimMetrics(result, std::min(index, schedule.size()));
    return result;
  };

  for (NodeId v : options.initial_red) {
    if (v < n && !test(red, v)) {
      red[v / 64] |= 1ull << (v % 64);
      red_weight += graph.weight(v);
    }
  }
  if (red_weight > budget) {
    return fail(0, SimErrorCode::kInitialRedOverBudget, kInvalidNode);
  }
  result.peak_red_weight = red_weight;

  for (std::size_t i = 0; i < schedule.size(); ++i) {
    const Move& m = schedule[i];
    const NodeId v = m.node;
    if (v >= n) {
      return fail(i, SimErrorCode::kNodeOutOfRange, v);
    }
    const Weight w = graph.weight(v);
    const std::size_t wd = v / 64;
    const std::uint64_t bit = 1ull << (v % 64);
    switch (m.type) {
      case MoveType::kLoad:  // M1: blue -> both
        if ((blue[wd] & bit) == 0) {
          return fail(i, SimErrorCode::kLoadNoBlue, v);
        }
        if ((red[wd] & bit) != 0) {
          return fail(i, SimErrorCode::kLoadAlreadyRed, v);
        }
        red[wd] |= bit;
        red_weight += w;
        result.cost += w;
        ++result.loads;
        break;
      case MoveType::kStore:  // M2: red -> both
        if ((red[wd] & bit) == 0) {
          return fail(i, SimErrorCode::kStoreNoRed, v);
        }
        if ((blue[wd] & bit) != 0) {
          return fail(i, SimErrorCode::kStoreAlreadyBlue, v);
        }
        blue[wd] |= bit;
        result.cost += w;
        ++result.stores;
        break;
      case MoveType::kCompute: {  // M3: all parents red -> add red
        if (masks.is_source(v)) {
          return fail(i, SimErrorCode::kComputeSource, v);
        }
        if ((red[wd] & bit) != 0) {
          return fail(i, SimErrorCode::kComputeAlreadyRed, v);
        }
        if (!masks.ParentsSubsetOf(v, red.data())) {
          // Cold path: the diagnostic names the FIRST offending parent in
          // CSR order — graph.parents(v) is sorted ascending, which is
          // also ascending bit order, so a rescan preserves the contract.
          for (NodeId p : graph.parents(v)) {
            if (!test(red, p)) {
              return fail(i, SimErrorCode::kComputeParentNotRed, p);
            }
          }
        }
        red[wd] |= bit;
        red_weight += w;
        ++result.computes;
        break;
      }
      case MoveType::kDelete:  // M4: remove red
        if ((red[wd] & bit) == 0) {
          return fail(i, SimErrorCode::kDeleteNoRed, v);
        }
        red[wd] &= ~bit;
        red_weight -= w;
        ++result.deletes;
        break;
    }
    if (red_weight > budget) {
      return fail(i, SimErrorCode::kBudgetExceeded, v);
    }
    result.peak_red_weight = std::max(result.peak_red_weight, red_weight);
    if (observer) observer(i, m, red_weight);
  }

  // One pass over the sinks decides the stop condition and remembers the
  // first offender for the diagnostic.
  NodeId first_unmet_sink = kInvalidNode;
  for (NodeId s : graph.sinks()) {
    if (!test(blue, s)) {
      first_unmet_sink = s;
      break;
    }
  }
  result.stop_condition_met = first_unmet_sink == kInvalidNode;
  if (options.require_stop_condition && !result.stop_condition_met) {
    return fail(schedule.size(), SimErrorCode::kStopConditionUnmet,
                first_unmet_sink);
  }
  for (NodeId v : options.required_red_at_end) {
    if (v >= n || !test(red, v)) {
      return fail(schedule.size(), SimErrorCode::kReuseConditionUnmet, v);
    }
  }

  result.final_red_weight = red_weight;
  result.valid = true;
  RecordSimMetrics(result, schedule.size());
  return result;
}

}  // namespace wrbpg
