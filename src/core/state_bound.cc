#include "core/state_bound.h"

#include <bit>
#include <cassert>

namespace wrbpg {
namespace {

// Iterates the set bits of an n-word mask, calling fn(NodeId).
template <typename Fn>
void ForEachSetBit(const std::uint64_t* words, std::size_t n, Fn&& fn) {
  for (std::size_t w = 0; w < n; ++w) {
    for (std::uint64_t m = words[w]; m != 0; m &= m - 1) {
      fn(static_cast<NodeId>(
          w * 64 + static_cast<std::size_t>(std::countr_zero(m))));
    }
  }
}

bool AnySet(const std::uint64_t* words, std::size_t n) {
  for (std::size_t w = 0; w < n; ++w) {
    if (words[w] != 0) return true;
  }
  return false;
}

}  // namespace

StateBound::StateBound(const Graph& graph, Weight budget,
                       std::uint64_t required_red, bool require_sinks_blue)
    : graph_(graph),
      budget_(budget),
      require_sinks_blue_(require_sinks_blue) {
  const NodeId n = graph.num_nodes();
  words_ = (static_cast<std::size_t>(n) + 63) / 64;
  if (words_ == 0) words_ = 1;
  compute_footprint_.assign(n, 0);

  wide_required_red_.assign(words_, 0);
  wide_sources_.assign(words_, 0);
  wide_sinks_.assign(words_, 0);
  wide_parents_.assign(words_ * n, 0);
  for (NodeId v = 0; v < 64 && v < n; ++v) {
    if ((required_red >> v) & 1) {
      wide_required_red_[v / 64] |= 1ull << (v % 64);
    }
  }
  required_red32_ = static_cast<std::uint32_t>(required_red);

  for (NodeId v = 0; v < n; ++v) {
    if (graph.is_source(v)) wide_sources_[v / 64] |= 1ull << (v % 64);
    if (graph.is_sink(v)) wide_sinks_[v / 64] |= 1ull << (v % 64);
    Weight footprint = graph.weight(v);
    for (NodeId p : graph.parents(v)) {
      wide_parents_[words_ * v + p / 64] |= 1ull << (p % 64);
      footprint += graph.weight(p);
    }
    compute_footprint_[v] = footprint;
  }

  if (n <= 32) {
    sources_mask_ = static_cast<std::uint32_t>(wide_sources_[0]);
    sinks_mask_ = static_cast<std::uint32_t>(wide_sinks_[0]);
    for (NodeId v = 0; v < n; ++v) {
      parents_mask_[v] = static_cast<std::uint32_t>(wide_parents_[v]);
    }
  }
}

Weight StateBound::Evaluate(std::uint32_t red, std::uint32_t blue) const {
  assert(graph_.num_nodes() <= 32);
  // Store term: sinks still owed their M2.
  Weight bound = 0;
  const std::uint32_t unstored =
      require_sinks_blue_ ? (sinks_mask_ & ~blue) : 0u;
  for (std::uint32_t m = unstored; m != 0; m &= m - 1) {
    bound += graph_.weight(static_cast<NodeId>(std::countr_zero(m)));
  }

  // Need closure: nodes that must become red in every completion. Targets
  // are the unmet red goals plus the un-red sinks still owed a store (a
  // store needs its red pebble first). The closure grows upward through
  // nodes that are neither red nor blue — those can only enter fast
  // memory via M3, which requires every parent red in turn. Blue non-red
  // nodes stop the walk (they may be re-loaded instead of recomputed, and
  // charging them here would not be additive), but a blue *source* in the
  // need set still pays its load: sources cannot be computed at all.
  std::uint32_t need = (required_red32_ | unstored) & ~red;
  std::uint32_t frontier = need & ~blue;
  while (frontier != 0) {
    std::uint32_t next = 0;
    for (std::uint32_t m = frontier; m != 0; m &= m - 1) {
      const NodeId v = static_cast<NodeId>(std::countr_zero(m));
      // A needed node with no pebble of either color must be computed.
      // Sources cannot be; and a compute whose Prop 2.3 footprint exceeds
      // the budget can never fire — either way no completion exists.
      if ((sources_mask_ & (1u << v)) != 0) return kInfiniteCost;
      if (compute_footprint_[v] > budget_) return kInfiniteCost;
      next |= parents_mask_[v];
    }
    next &= ~red & ~need;
    need |= next;
    frontier = next & ~blue;
  }

  // Load term: needed sources (all !red by construction; all blue, since a
  // needed blue-less source already returned infinity above).
  for (std::uint32_t m = need & sources_mask_; m != 0; m &= m - 1) {
    bound += graph_.weight(static_cast<NodeId>(std::countr_zero(m)));
  }
  return bound;
}

// The word-span twin of the packed Evaluate above: identical closure, mask
// ops spelled per 64-bit word. The two are differentially tested against
// each other over random (red, blue) pairs in tests/state_bound_test.cc.
Weight StateBound::Evaluate(const std::uint64_t* red,
                            const std::uint64_t* blue,
                            WideScratch& scratch) const {
  const std::size_t W = words_;
  scratch.need.assign(W, 0);
  scratch.frontier.assign(W, 0);
  scratch.next.assign(W, 0);
  std::uint64_t* need = scratch.need.data();
  std::uint64_t* frontier = scratch.frontier.data();
  std::uint64_t* next = scratch.next.data();

  Weight bound = 0;
  bool dead = false;
  for (std::size_t w = 0; w < W; ++w) {
    const std::uint64_t unstored =
        require_sinks_blue_ ? (wide_sinks_[w] & ~blue[w]) : 0ull;
    for (std::uint64_t m = unstored; m != 0; m &= m - 1) {
      bound += graph_.weight(static_cast<NodeId>(
          w * 64 + static_cast<std::size_t>(std::countr_zero(m))));
    }
    need[w] = (wide_required_red_[w] | unstored) & ~red[w];
    frontier[w] = need[w] & ~blue[w];
  }

  while (AnySet(frontier, W)) {
    for (std::size_t w = 0; w < W; ++w) next[w] = 0;
    ForEachSetBit(frontier, W, [&](NodeId v) {
      if (dead) return;
      if ((wide_sources_[v / 64] >> (v % 64)) & 1) {
        dead = true;
        return;
      }
      if (compute_footprint_[v] > budget_) {
        dead = true;
        return;
      }
      const std::uint64_t* parents = &wide_parents_[W * v];
      for (std::size_t w = 0; w < W; ++w) next[w] |= parents[w];
    });
    if (dead) return kInfiniteCost;
    for (std::size_t w = 0; w < W; ++w) {
      next[w] &= ~red[w] & ~need[w];
      need[w] |= next[w];
      frontier[w] = next[w] & ~blue[w];
    }
  }

  for (std::size_t w = 0; w < W; ++w) {
    for (std::uint64_t m = need[w] & wide_sources_[w]; m != 0; m &= m - 1) {
      bound += graph_.weight(static_cast<NodeId>(
          w * 64 + static_cast<std::size_t>(std::countr_zero(m))));
    }
  }
  return bound;
}

Weight StateBound::StartBound() const {
  if (graph_.num_nodes() <= 32) return Evaluate(0, sources_mask_);
  WideScratch scratch;
  std::vector<std::uint64_t> red(words_, 0);
  return Evaluate(red.data(), wide_sources_.data(), scratch);
}

}  // namespace wrbpg
