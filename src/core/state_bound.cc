#include "core/state_bound.h"

#include <bit>
#include <cassert>

namespace wrbpg {

StateBound::StateBound(const Graph& graph, Weight budget,
                       std::uint32_t required_red, bool require_sinks_blue)
    : graph_(graph),
      budget_(budget),
      required_red_(required_red),
      require_sinks_blue_(require_sinks_blue) {
  const NodeId n = graph.num_nodes();
  assert(n <= 32);
  for (NodeId v = 0; v < n; ++v) {
    if (graph.is_source(v)) sources_mask_ |= 1u << v;
    if (graph.is_sink(v)) sinks_mask_ |= 1u << v;
    Weight footprint = graph.weight(v);
    for (NodeId p : graph.parents(v)) {
      parents_mask_[v] |= 1u << p;
      footprint += graph.weight(p);
    }
    compute_footprint_[v] = footprint;
  }
}

Weight StateBound::Evaluate(std::uint32_t red, std::uint32_t blue) const {
  // Store term: sinks still owed their M2.
  Weight bound = 0;
  const std::uint32_t unstored =
      require_sinks_blue_ ? (sinks_mask_ & ~blue) : 0u;
  for (std::uint32_t m = unstored; m != 0; m &= m - 1) {
    bound += graph_.weight(static_cast<NodeId>(std::countr_zero(m)));
  }

  // Need closure: nodes that must become red in every completion. Targets
  // are the unmet red goals plus the un-red sinks still owed a store (a
  // store needs its red pebble first). The closure grows upward through
  // nodes that are neither red nor blue — those can only enter fast
  // memory via M3, which requires every parent red in turn. Blue non-red
  // nodes stop the walk (they may be re-loaded instead of recomputed, and
  // charging them here would not be additive), but a blue *source* in the
  // need set still pays its load: sources cannot be computed at all.
  std::uint32_t need = (required_red_ | unstored) & ~red;
  std::uint32_t frontier = need & ~blue;
  while (frontier != 0) {
    std::uint32_t next = 0;
    for (std::uint32_t m = frontier; m != 0; m &= m - 1) {
      const NodeId v = static_cast<NodeId>(std::countr_zero(m));
      // A needed node with no pebble of either color must be computed.
      // Sources cannot be; and a compute whose Prop 2.3 footprint exceeds
      // the budget can never fire — either way no completion exists.
      if ((sources_mask_ & (1u << v)) != 0) return kInfiniteCost;
      if (compute_footprint_[v] > budget_) return kInfiniteCost;
      next |= parents_mask_[v];
    }
    next &= ~red & ~need;
    need |= next;
    frontier = next & ~blue;
  }

  // Load term: needed sources (all !red by construction; all blue, since a
  // needed blue-less source already returned infinity above).
  for (std::uint32_t m = need & sources_mask_; m != 0; m &= m - 1) {
    bound += graph_.weight(static_cast<NodeId>(std::countr_zero(m)));
  }
  return bound;
}

Weight StateBound::StartBound() const {
  return Evaluate(0, sources_mask_);
}

}  // namespace wrbpg
