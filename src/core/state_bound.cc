#include "core/state_bound.h"

#include <bit>
#include <cassert>

namespace wrbpg {

StateBound::StateBound(const Graph& graph, Weight budget,
                       std::uint64_t required_red, bool require_sinks_blue,
                       bool build_wide)
    : graph_(graph),
      budget_(budget),
      require_sinks_blue_(require_sinks_blue) {
  const NodeId n = graph.num_nodes();
  words_ = (static_cast<std::size_t>(n) + 63) / 64;
  if (words_ == 0) words_ = 1;
  compute_footprint_.assign(n, 0);
  for (NodeId v = 0; v < n; ++v) {
    Weight footprint = graph.weight(v);
    for (NodeId p : graph.parents(v)) footprint += graph.weight(p);
    compute_footprint_[v] = footprint;
  }
  required_red32_ = static_cast<std::uint32_t>(required_red);

  if (n <= 32) {
    for (NodeId v = 0; v < n; ++v) {
      if (graph.is_source(v)) sources_mask_ |= 1u << v;
      if (graph.is_sink(v)) sinks_mask_ |= 1u << v;
      for (NodeId p : graph.parents(v)) {
        parents_mask_[v] |= 1u << p;
        children_mask_[p] |= 1u << v;
      }
    }
  }
  // The packed masks cannot represent graphs above 32 nodes, so those
  // always build the word-span machinery; at or below 32 nodes it is
  // opt-in (the packed search path passes build_wide = false and carries
  // no wide buffers at all).
  if (build_wide || n > 32) {
    wide_masks_.emplace(graph, /*with_children=*/true);
    wide_required_red_.assign(words_, 0);
    for (NodeId v = 0; v < 64 && v < n; ++v) {
      if ((required_red >> v) & 1) {
        wide_required_red_[v / 64] |= 1ull << (v % 64);
      }
    }
  }
}

void StateBound::Prepare(std::uint32_t red, std::uint32_t blue,
                         PackedCtx& ctx) const {
  assert(graph_.num_nodes() <= 32);
  ctx.red = red;
  ctx.blue = blue;
  ctx.need = 0;
  ctx.store = 0;
  ctx.load = 0;
  ctx.dead = false;

  // Store term: sinks still owed their M2.
  const std::uint32_t unstored =
      require_sinks_blue_ ? (sinks_mask_ & ~blue) : 0u;
  for (std::uint32_t m = unstored; m != 0; m &= m - 1) {
    ctx.store += graph_.weight(static_cast<NodeId>(std::countr_zero(m)));
  }

  // Need closure: nodes that must become red in every completion. Targets
  // are the unmet red goals plus the un-red sinks still owed a store (a
  // store needs its red pebble first). The closure grows upward through
  // nodes that are neither red nor blue — those can only enter fast
  // memory via M3, which requires every parent red in turn. Blue non-red
  // nodes stop the walk (they may be re-loaded instead of recomputed, and
  // charging them here would not be additive), but a blue *source* in the
  // need set still pays its load: sources cannot be computed at all.
  std::uint32_t need = (required_red32_ | unstored) & ~red;
  std::uint32_t frontier = need & ~blue;
  while (frontier != 0) {
    std::uint32_t next = 0;
    for (std::uint32_t m = frontier; m != 0; m &= m - 1) {
      const NodeId v = static_cast<NodeId>(std::countr_zero(m));
      // A needed node with no pebble of either color must be computed.
      // Sources cannot be; and a compute whose Prop 2.3 footprint exceeds
      // the budget can never fire — either way no completion exists.
      if ((sources_mask_ & (1u << v)) != 0 || compute_footprint_[v] > budget_) {
        ctx.dead = true;
        return;
      }
      next |= parents_mask_[v];
    }
    next &= ~red & ~need;
    need |= next;
    frontier = next & ~blue;
  }
  ctx.need = need;

  // Load term: needed sources (all !red by construction; all blue, since a
  // needed blue-less source already went dead above).
  for (std::uint32_t m = need & sources_mask_; m != 0; m &= m - 1) {
    ctx.load += graph_.weight(static_cast<NodeId>(std::countr_zero(m)));
  }
}

Weight StateBound::Evaluate(std::uint32_t red, std::uint32_t blue) const {
  PackedCtx ctx;
  Prepare(red, blue, ctx);
  return ctx.dead ? kInfiniteCost : ctx.store + ctx.load;
}

bool StateBound::EvalMoveFast(const PackedCtx& ctx, MoveType type, NodeId v,
                              Weight* h) const {
  if (ctx.dead) {
    *h = kInfiniteCost;
    return true;
  }
  const std::uint32_t bit = 1u << v;
  switch (type) {
    case MoveType::kLoad: {
      // v was blue, so the walk never propagated through it: red-ing v
      // removes exactly v from the need set.
      Weight load = ctx.load;
      if ((ctx.need & bit) != 0 && (sources_mask_ & bit) != 0) {
        load -= graph_.weight(v);
      }
      *h = ctx.store + load;
      return true;
    }
    case MoveType::kStore: {
      // v is red, so the closure lives entirely outside v: only the
      // store term can move, and it discharges iff v is an unstored sink.
      Weight store = ctx.store;
      if (require_sinks_blue_ && (sinks_mask_ & bit) != 0 &&
          (ctx.blue & bit) == 0) {
        store -= graph_.weight(v);
      }
      *h = store + ctx.load;
      return true;
    }
    case MoveType::kCompute:
      // h is INVARIANT under every legal M3. Legality makes every parent
      // of v red, so no closure chain ever propagated THROUGH v — the
      // walk masks propagation with ~red, and everything v could emit is
      // red. Red-ing v therefore removes exactly {v} from the need set
      // (and from the targets, if it was one), and v is a non-source, so
      // neither the store nor the load term moves.
      *h = ctx.store + ctx.load;
      return true;
    case MoveType::kDelete: {
      // v re-enters the closure only as a target (required-red or
      // unstored sink) or as a parent of a needed un-pebbled node; the
      // walks are otherwise identical, so "no re-entry" ⇒ need invariant.
      const std::uint32_t unstored =
          require_sinks_blue_ ? (sinks_mask_ & ~ctx.blue) : 0u;
      if (((required_red32_ | unstored) & bit) == 0 &&
          (children_mask_[v] & ctx.need & ~ctx.blue) == 0) {
        *h = ctx.store + ctx.load;
        return true;
      }
      return false;
    }
  }
  return false;
}

Weight StateBound::EvalMoveSlow(const PackedCtx& ctx, MoveType type,
                                NodeId v) const {
  const std::uint32_t bit = 1u << v;
  if (type == MoveType::kCompute) {
    // Restricted re-walk: the successor's closure is a subset of the
    // parent's (red grew, targets shrank), so candidates can be masked
    // with ctx.need — and every non-blue member already passed the
    // parent walk's source/footprint checks, so the successor can never
    // be dead and the checks are dropped wholesale.
    const std::uint32_t red = ctx.red | bit;
    const std::uint32_t unstored =
        require_sinks_blue_ ? (sinks_mask_ & ~ctx.blue) : 0u;
    std::uint32_t need = (required_red32_ | unstored) & ~red;
    std::uint32_t frontier = need & ~ctx.blue;
    while (frontier != 0) {
      std::uint32_t next = 0;
      for (std::uint32_t m = frontier; m != 0; m &= m - 1) {
        next |= parents_mask_[std::countr_zero(m)];
      }
      next &= ctx.need & ~red & ~need;
      need |= next;
      frontier = next & ~ctx.blue;
    }
    Weight load = 0;
    for (std::uint32_t m = need & sources_mask_; m != 0; m &= m - 1) {
      load += graph_.weight(static_cast<NodeId>(std::countr_zero(m)));
    }
    return ctx.store + load;
  }
  assert(type == MoveType::kDelete);
  // Incremental extension: every member of need(after) \ need(before) has
  // a derivation chain through v, so re-seed the walk at v alone and grow
  // the parent's closure in place. The successor's red differs from the
  // parent's only at v, and v is already in `need`, so masking candidate
  // words with the PARENT's red is exact.
  std::uint32_t need = ctx.need | bit;
  Weight load = ctx.load;
  std::uint32_t frontier = 0;
  if ((ctx.blue & bit) != 0) {
    // A blue member joins the need set without propagating; a source
    // among them still owes its load.
    if ((sources_mask_ & bit) != 0) load += graph_.weight(v);
  } else {
    frontier = bit;
  }
  while (frontier != 0) {
    std::uint32_t next = 0;
    for (std::uint32_t m = frontier; m != 0; m &= m - 1) {
      const NodeId u = static_cast<NodeId>(std::countr_zero(m));
      if ((sources_mask_ & (1u << u)) != 0 || compute_footprint_[u] > budget_) {
        return kInfiniteCost;
      }
      next |= parents_mask_[u];
    }
    next &= ~ctx.red & ~need;
    need |= next;
    for (std::uint32_t m = next & sources_mask_; m != 0; m &= m - 1) {
      const NodeId u = static_cast<NodeId>(std::countr_zero(m));
      if ((ctx.blue & (1u << u)) == 0) return kInfiniteCost;
      load += graph_.weight(u);
    }
    frontier = next & ~ctx.blue;
  }
  return ctx.store + load;
}

// ---- Word-span twins: identical closure, mask ops spelled per 64-bit
// word. Differentially tested against the packed path over random
// (red, blue) pairs in tests/state_bound_test.cc. ----

Weight StateBound::Evaluate(const std::uint64_t* red,
                            const std::uint64_t* blue,
                            WideScratch& scratch) const {
  scratch.need.assign(words_, 0);
  Weight store = 0;
  Weight load = 0;
  if (!WideWalk(red, blue, scratch.need.data(), scratch, &store, &load)) {
    return kInfiniteCost;
  }
  return store + load;
}

void StateBound::Prepare(const std::uint64_t* red, const std::uint64_t* blue,
                         WideCtx& ctx, WideScratch& scratch) const {
  ctx.need.assign(words_, 0);
  ctx.store = 0;
  ctx.load = 0;
  ctx.dead = !WideWalk(red, blue, ctx.need.data(), scratch, &ctx.store,
                       &ctx.load);
}

bool StateBound::WideWalk(const std::uint64_t* red, const std::uint64_t* blue,
                          std::uint64_t* need, WideScratch& scratch,
                          Weight* store, Weight* load) const {
  assert(wide_masks_.has_value());
  const std::size_t W = words_;
  const GraphMasks& masks = *wide_masks_;
  scratch.frontier.assign(W, 0);
  scratch.next.assign(W, 0);
  std::uint64_t* frontier = scratch.frontier.data();
  std::uint64_t* next = scratch.next.data();

  for (std::size_t w = 0; w < W; ++w) {
    const std::uint64_t unstored =
        require_sinks_blue_ ? (masks.sinks()[w] & ~blue[w]) : 0ull;
    for (std::uint64_t m = unstored; m != 0; m &= m - 1) {
      *store += graph_.weight(static_cast<NodeId>(
          w * 64 + static_cast<std::size_t>(std::countr_zero(m))));
    }
    need[w] = (wide_required_red_[w] | unstored) & ~red[w];
    frontier[w] = need[w] & ~blue[w];
  }

  bool dead = false;
  while (GraphMasks::AnySet(frontier, W)) {
    for (std::size_t w = 0; w < W; ++w) next[w] = 0;
    GraphMasks::ForEachSetBit(frontier, W, [&](NodeId v) {
      if (dead) return;
      if (masks.is_source(v) || compute_footprint_[v] > budget_) {
        dead = true;
        return;
      }
      const std::uint64_t* parents = masks.parents_of(v);
      for (std::size_t w = 0; w < W; ++w) next[w] |= parents[w];
    });
    if (dead) return false;
    for (std::size_t w = 0; w < W; ++w) {
      next[w] &= ~red[w] & ~need[w];
      need[w] |= next[w];
      frontier[w] = next[w] & ~blue[w];
    }
  }

  for (std::size_t w = 0; w < W; ++w) {
    for (std::uint64_t m = need[w] & masks.sources()[w]; m != 0; m &= m - 1) {
      *load += graph_.weight(static_cast<NodeId>(
          w * 64 + static_cast<std::size_t>(std::countr_zero(m))));
    }
  }
  return true;
}

bool StateBound::EvalMoveFast(const WideCtx& ctx,
                              const std::uint64_t* /*red*/,
                              const std::uint64_t* blue, MoveType type,
                              NodeId v, Weight* h) const {
  if (ctx.dead) {
    *h = kInfiniteCost;
    return true;
  }
  const GraphMasks& masks = *wide_masks_;
  const std::size_t wd = v / 64;
  const std::uint64_t bit = 1ull << (v % 64);
  switch (type) {
    case MoveType::kLoad: {
      Weight load = ctx.load;
      if ((ctx.need[wd] & bit) != 0 && (masks.sources()[wd] & bit) != 0) {
        load -= graph_.weight(v);
      }
      *h = ctx.store + load;
      return true;
    }
    case MoveType::kStore: {
      Weight store = ctx.store;
      if (require_sinks_blue_ && (masks.sinks()[wd] & bit) != 0 &&
          (blue[wd] & bit) == 0) {
        store -= graph_.weight(v);
      }
      *h = store + ctx.load;
      return true;
    }
    case MoveType::kCompute:
      // Invariant for every legal M3 — see the packed twin above: all of
      // v's parents are red, so nothing was ever derived through v and
      // the closure loses exactly {v}, a non-source.
      *h = ctx.store + ctx.load;
      return true;
    case MoveType::kDelete: {
      const std::uint64_t unstored =
          require_sinks_blue_ ? (masks.sinks()[wd] & ~blue[wd]) : 0ull;
      if (((wide_required_red_[wd] | unstored) & bit) != 0) return false;
      const std::uint64_t* children = masks.children_of(v);
      for (std::size_t w = 0; w < words_; ++w) {
        if ((children[w] & ctx.need[w] & ~blue[w]) != 0) return false;
      }
      *h = ctx.store + ctx.load;
      return true;
    }
  }
  return false;
}

Weight StateBound::EvalMoveSlow(const WideCtx& ctx, const std::uint64_t* red,
                                const std::uint64_t* blue, MoveType type,
                                NodeId v, WideScratch& scratch) const {
  const std::size_t W = words_;
  const GraphMasks& masks = *wide_masks_;
  const std::size_t wd = v / 64;
  const std::uint64_t bit = 1ull << (v % 64);
  if (type == MoveType::kCompute) {
    // Restricted re-walk, the word-span twin of the packed path above:
    // the successor's closure is a subset of the parent's, so candidates
    // are masked with ctx.need and the parent walk's source/footprint
    // checks never need re-running (the successor cannot be dead).
    scratch.tmp.assign(W, 0);
    std::uint64_t* need = scratch.tmp.data();
    scratch.frontier.assign(W, 0);
    scratch.next.assign(W, 0);
    std::uint64_t* frontier = scratch.frontier.data();
    std::uint64_t* next = scratch.next.data();
    for (std::size_t w = 0; w < W; ++w) {
      const std::uint64_t unstored =
          require_sinks_blue_ ? (masks.sinks()[w] & ~blue[w]) : 0ull;
      need[w] = (wide_required_red_[w] | unstored) & ~red[w];
      frontier[w] = need[w] & ~blue[w];
    }
    need[wd] &= ~bit;
    frontier[wd] &= ~bit;
    while (GraphMasks::AnySet(frontier, W)) {
      for (std::size_t w = 0; w < W; ++w) next[w] = 0;
      GraphMasks::ForEachSetBit(frontier, W, [&](NodeId u) {
        const std::uint64_t* parents = masks.parents_of(u);
        for (std::size_t w = 0; w < W; ++w) next[w] |= parents[w];
      });
      next[wd] &= ~bit;  // v is red in the successor
      for (std::size_t w = 0; w < W; ++w) {
        next[w] &= ctx.need[w] & ~red[w] & ~need[w];
        need[w] |= next[w];
        frontier[w] = next[w] & ~blue[w];
      }
    }
    Weight load = 0;
    for (std::size_t w = 0; w < W; ++w) {
      for (std::uint64_t m = need[w] & masks.sources()[w]; m != 0;
           m &= m - 1) {
        load += graph_.weight(static_cast<NodeId>(
            w * 64 + static_cast<std::size_t>(std::countr_zero(m))));
      }
    }
    return ctx.store + load;
  }
  assert(type == MoveType::kDelete);
  // Seeded extension of the parent closure — the word-span twin of the
  // packed EvalMoveSlow above; see there for why the parent's red mask
  // stays exact.
  scratch.need.assign(ctx.need.begin(), ctx.need.end());
  std::uint64_t* need = scratch.need.data();
  need[wd] |= bit;
  Weight load = ctx.load;
  scratch.frontier.assign(W, 0);
  scratch.next.assign(W, 0);
  std::uint64_t* frontier = scratch.frontier.data();
  std::uint64_t* next = scratch.next.data();
  if ((blue[wd] & bit) != 0) {
    if ((masks.sources()[wd] & bit) != 0) load += graph_.weight(v);
  } else {
    frontier[wd] = bit;
  }
  while (GraphMasks::AnySet(frontier, W)) {
    for (std::size_t w = 0; w < W; ++w) next[w] = 0;
    bool dead = false;
    GraphMasks::ForEachSetBit(frontier, W, [&](NodeId u) {
      if (dead) return;
      if (masks.is_source(u) || compute_footprint_[u] > budget_) {
        dead = true;
        return;
      }
      const std::uint64_t* parents = masks.parents_of(u);
      for (std::size_t w = 0; w < W; ++w) next[w] |= parents[w];
    });
    if (dead) return kInfiniteCost;
    for (std::size_t w = 0; w < W; ++w) {
      next[w] &= ~red[w] & ~need[w];
      need[w] |= next[w];
    }
    for (std::size_t w = 0; w < W; ++w) {
      for (std::uint64_t m = next[w] & masks.sources()[w]; m != 0;
           m &= m - 1) {
        const NodeId u = static_cast<NodeId>(
            w * 64 + static_cast<std::size_t>(std::countr_zero(m)));
        if ((blue[u / 64] & (1ull << (u % 64))) == 0) return kInfiniteCost;
        load += graph_.weight(u);
      }
      frontier[w] = next[w] & ~blue[w];
    }
  }
  return ctx.store + load;
}

Weight StateBound::StartBound() const {
  if (graph_.num_nodes() <= 32) return Evaluate(0, sources_mask_);
  WideScratch scratch;
  return StartBound(scratch);
}

Weight StateBound::StartBound(WideScratch& scratch) const {
  if (graph_.num_nodes() <= 32) return Evaluate(0, sources_mask_);
  scratch.tmp.assign(words_, 0);
  return Evaluate(scratch.tmp.data(), wide_masks_->sources(), scratch);
}

}  // namespace wrbpg
