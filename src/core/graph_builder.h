// Mutable builder producing validated, immutable Graphs.
//
// Build() enforces the WRBPG model preconditions from Sec 2.1: positive
// weights, no self-loops, no duplicate edges, acyclicity, and (optionally)
// A(G) ∩ Z(G) = ∅ — the paper assumes sources and sinks are disjoint, but
// single-node graphs are useful in tests, so the check can be relaxed.
#pragma once

#include <string>
#include <vector>

#include "core/graph.h"
#include "core/types.h"

namespace wrbpg {

class GraphBuilder {
 public:
  // Adds a node with the given weight (> 0) and optional debug name.
  NodeId AddNode(Weight weight, std::string name = {});

  // Adds a directed edge u -> v. Both endpoints must already exist.
  void AddEdge(NodeId u, NodeId v);

  NodeId num_nodes() const noexcept {
    return static_cast<NodeId>(weights_.size());
  }

  struct BuildOptions {
    // Enforce the paper's A(G) ∩ Z(G) = ∅ assumption.
    bool require_disjoint_sources_sinks = true;
  };

  struct BuildResult {
    Graph graph;
    bool ok = false;
    std::string error;  // set when !ok
  };

  // Validates and produces the Graph. The builder may be reused afterwards.
  BuildResult Build(const BuildOptions& options) const;
  BuildResult Build() const { return Build(BuildOptions{}); }

  // Convenience for constructions that are correct by design (dataflow
  // generators, tests): aborts with the validation message on failure.
  Graph BuildOrDie(const BuildOptions& options) const;
  Graph BuildOrDie() { return BuildOrDie(BuildOptions{}); }

 private:
  std::vector<Weight> weights_;
  std::vector<std::string> names_;
  std::vector<std::pair<NodeId, NodeId>> edges_;
};

}  // namespace wrbpg
