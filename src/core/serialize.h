// Text serialization for graphs and schedules.
//
// Graph text format (one directive per line, '#' comments):
//   wrbpg-graph v1
//   node <id> <weight> [name]
//   edge <u> <v>
// Node ids must be dense 0..n-1 and declared before use in edges.
//
// Also emits Graphviz DOT for visual inspection of the dataflow graphs
// (sources as boxes, sinks as double circles, weights as labels).
#pragma once

#include <string>

#include "core/graph.h"
#include "core/schedule.h"

namespace wrbpg {

std::string ToText(const Graph& graph);
std::string ToDot(const Graph& graph, const std::string& title = "wrbpg");

struct GraphParseResult {
  Graph graph;
  bool ok = false;
  std::string error;
};
GraphParseResult ParseGraphText(const std::string& text);

// Schedules serialize as one move per line, e.g. "M3 7".
std::string ToText(const Schedule& schedule);

struct ScheduleParseResult {
  Schedule schedule;
  bool ok = false;
  std::string error;
};
ScheduleParseResult ParseScheduleText(const std::string& text);

}  // namespace wrbpg
