#include "core/move.h"

namespace wrbpg {

const char* ToString(MoveType type) {
  switch (type) {
    case MoveType::kLoad:
      return "M1";
    case MoveType::kStore:
      return "M2";
    case MoveType::kCompute:
      return "M3";
    case MoveType::kDelete:
      return "M4";
  }
  return "M?";
}

std::string ToString(const Move& move) {
  return std::string(ToString(move.type)) + "(v" + std::to_string(move.node) +
         ")";
}

}  // namespace wrbpg
