#include "core/binio.h"

#include <cstdint>
#include <set>
#include <utility>
#include <vector>

#include "core/graph_builder.h"
#include "core/types.h"

namespace wrbpg {
namespace {

constexpr std::size_t kHeaderSize = 8;
constexpr std::size_t kChecksumSize = 8;
// Bounds an individual node-name record; a longer length field in the
// stream is corruption, not a graph.
constexpr std::uint32_t kMaxNameLen = 4096;

std::uint64_t Fnv1a(std::string_view bytes) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : bytes) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

void PutU16(std::string& out, std::uint16_t v) {
  out.push_back(static_cast<char>(v & 0xff));
  out.push_back(static_cast<char>((v >> 8) & 0xff));
}

void PutU32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void PutU64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void PutHeader(std::string& out, std::uint8_t kind) {
  out.append(kBinMagic);
  out.push_back(static_cast<char>(kBinVersion));
  out.push_back(static_cast<char>(kind));
  PutU16(out, 0);  // reserved
}

void PutChecksum(std::string& out) {
  PutU64(out, Fnv1a(out));
}

// Bounds-checked little-endian reader over the payload region.
class Reader {
 public:
  explicit Reader(std::string_view bytes) : bytes_(bytes) {}

  std::size_t offset() const { return pos_; }
  std::size_t remaining() const { return bytes_.size() - pos_; }

  bool ReadU8(std::uint8_t& out) {
    if (remaining() < 1) return false;
    out = static_cast<std::uint8_t>(bytes_[pos_++]);
    return true;
  }
  bool ReadU32(std::uint32_t& out) {
    if (remaining() < 4) return false;
    out = 0;
    for (int i = 0; i < 4; ++i) {
      out |= static_cast<std::uint32_t>(
                 static_cast<std::uint8_t>(bytes_[pos_ + static_cast<std::size_t>(i)]))
             << (8 * i);
    }
    pos_ += 4;
    return true;
  }
  bool ReadU64(std::uint64_t& out) {
    if (remaining() < 8) return false;
    out = 0;
    for (int i = 0; i < 8; ++i) {
      out |= static_cast<std::uint64_t>(
                 static_cast<std::uint8_t>(bytes_[pos_ + static_cast<std::size_t>(i)]))
             << (8 * i);
    }
    pos_ += 8;
    return true;
  }
  bool ReadI64(std::int64_t& out) {
    std::uint64_t raw = 0;
    if (!ReadU64(raw)) return false;
    out = static_cast<std::int64_t>(raw);
    return true;
  }
  bool ReadBytes(std::size_t n, std::string_view& out) {
    if (remaining() < n) return false;
    out = bytes_.substr(pos_, n);
    pos_ += n;
    return true;
  }

 private:
  std::string_view bytes_;
  std::size_t pos_ = 0;
};

// Validates the fixed envelope (magic, version, kind, checksum) and
// returns the payload region, or a failure reason.
bool OpenEnvelope(std::string_view bytes, std::uint8_t expected_kind,
                  std::string_view& payload, std::string& error) {
  if (bytes.size() < kHeaderSize + kChecksumSize) {
    error = "truncated: " + std::to_string(bytes.size()) +
            " bytes is shorter than header + checksum";
    return false;
  }
  if (bytes.substr(0, kBinMagic.size()) != kBinMagic) {
    error = "bad magic: expected 'WBIN'";
    return false;
  }
  const auto version = static_cast<std::uint8_t>(bytes[4]);
  if (version != kBinVersion) {
    error = "unsupported version " + std::to_string(version) +
            " (this reader speaks v" + std::to_string(kBinVersion) + ")";
    return false;
  }
  const auto kind = static_cast<std::uint8_t>(bytes[5]);
  if (kind != expected_kind) {
    error = "wrong kind " + std::to_string(kind) + " (expected " +
            std::to_string(expected_kind) + ")";
    return false;
  }
  if (bytes[6] != 0 || bytes[7] != 0) {
    error = "reserved header bytes are not zero";
    return false;
  }
  const std::string_view body = bytes.substr(0, bytes.size() - kChecksumSize);
  Reader footer(bytes.substr(bytes.size() - kChecksumSize));
  std::uint64_t stored = 0;
  footer.ReadU64(stored);
  const std::uint64_t computed = Fnv1a(body);
  if (stored != computed) {
    error = "checksum mismatch (corrupt or truncated stream)";
    return false;
  }
  payload = bytes.substr(kHeaderSize, bytes.size() - kHeaderSize -
                                          kChecksumSize);
  return true;
}

}  // namespace

bool LooksLikeBinary(std::string_view bytes) {
  return bytes.size() >= kBinMagic.size() &&
         bytes.substr(0, kBinMagic.size()) == kBinMagic;
}

std::string ToBinary(const Graph& graph) {
  std::string out;
  PutHeader(out, kBinKindGraph);
  PutU32(out, graph.num_nodes());
  PutU32(out, static_cast<std::uint32_t>(graph.num_edges()));
  for (NodeId v = 0; v < graph.num_nodes(); ++v) {
    PutU64(out, static_cast<std::uint64_t>(graph.weight(v)));
  }
  bool any_name = false;
  for (NodeId v = 0; v < graph.num_nodes() && !any_name; ++v) {
    any_name = !graph.name(v).empty();
  }
  out.push_back(any_name ? '\x01' : '\x00');
  if (any_name) {
    for (NodeId v = 0; v < graph.num_nodes(); ++v) {
      const std::string& name = graph.name(v);
      PutU32(out, static_cast<std::uint32_t>(name.size()));
      out.append(name);
    }
  }
  for (NodeId v = 0; v < graph.num_nodes(); ++v) {
    for (const NodeId c : graph.children(v)) {
      PutU32(out, v);
      PutU32(out, c);
    }
  }
  PutChecksum(out);
  return out;
}

std::string ToBinary(const Schedule& schedule) {
  std::string out;
  PutHeader(out, kBinKindSchedule);
  PutU32(out, static_cast<std::uint32_t>(schedule.size()));
  for (const Move& move : schedule) {
    out.push_back(static_cast<char>(move.type));
    PutU32(out, move.node);
  }
  PutChecksum(out);
  return out;
}

GraphParseResult ParseGraphBinary(std::string_view bytes) {
  GraphParseResult result;
  std::string_view payload;
  if (!OpenEnvelope(bytes, kBinKindGraph, payload, result.error)) {
    return result;
  }
  Reader in(payload);
  auto fail = [&](const std::string& message) {
    result.error =
        "offset " + std::to_string(kHeaderSize + in.offset()) + ": " + message;
    return result;
  };
  std::uint32_t num_nodes = 0;
  std::uint32_t num_edges = 0;
  if (!in.ReadU32(num_nodes) || !in.ReadU32(num_edges)) {
    return fail("truncated counts");
  }
  if (num_nodes == 0) return fail("graph declares zero nodes");
  // Every node costs >= 8 payload bytes (its weight) and every edge 8;
  // counts beyond the remaining bytes are corruption, rejected before
  // any allocation is sized from them.
  if (num_nodes > in.remaining() / 8) {
    return fail("declared node count " + std::to_string(num_nodes) +
                " exceeds the remaining payload");
  }
  if (num_edges > in.remaining() / 8) {
    return fail("declared edge count " + std::to_string(num_edges) +
                " exceeds the remaining payload");
  }
  std::vector<Weight> weights(num_nodes);
  for (std::uint32_t v = 0; v < num_nodes; ++v) {
    if (!in.ReadI64(weights[v])) return fail("truncated weight table");
    if (weights[v] <= 0) {
      return fail("node " + std::to_string(v) + " has non-positive weight " +
                  std::to_string(weights[v]));
    }
  }
  std::uint8_t names_present = 0;
  if (!in.ReadU8(names_present)) return fail("truncated names flag");
  if (names_present > 1) {
    return fail("names flag must be 0 or 1, got " +
                std::to_string(names_present));
  }
  GraphBuilder builder;
  for (std::uint32_t v = 0; v < num_nodes; ++v) {
    std::string name;
    if (names_present == 1) {
      std::uint32_t len = 0;
      if (!in.ReadU32(len)) return fail("truncated name table");
      if (len > kMaxNameLen) {
        return fail("name length " + std::to_string(len) + " exceeds limit " +
                    std::to_string(kMaxNameLen));
      }
      std::string_view raw;
      if (!in.ReadBytes(len, raw)) return fail("truncated name bytes");
      name.assign(raw);
    }
    builder.AddNode(weights[v], std::move(name));
  }
  std::set<std::pair<std::uint32_t, std::uint32_t>> seen_edges;
  for (std::uint32_t e = 0; e < num_edges; ++e) {
    std::uint32_t u = 0;
    std::uint32_t v = 0;
    if (!in.ReadU32(u) || !in.ReadU32(v)) return fail("truncated edge table");
    if (u >= num_nodes || v >= num_nodes) {
      return fail("edge (" + std::to_string(u) + "," + std::to_string(v) +
                  ") references an undeclared node");
    }
    if (u == v) return fail("self-loop on node " + std::to_string(u));
    if (!seen_edges.emplace(u, v).second) {
      return fail("duplicate edge (" + std::to_string(u) + "," +
                  std::to_string(v) + ")");
    }
    builder.AddEdge(u, v);
  }
  if (in.remaining() != 0) {
    return fail(std::to_string(in.remaining()) +
                " trailing payload bytes after the edge table");
  }
  auto built = builder.Build();
  if (!built.ok) {
    result.error = built.error;
    return result;
  }
  result.graph = std::move(built.graph);
  result.ok = true;
  return result;
}

ScheduleParseResult ParseScheduleBinary(std::string_view bytes) {
  ScheduleParseResult result;
  std::string_view payload;
  if (!OpenEnvelope(bytes, kBinKindSchedule, payload, result.error)) {
    return result;
  }
  Reader in(payload);
  auto fail = [&](const std::string& message) {
    result.error =
        "offset " + std::to_string(kHeaderSize + in.offset()) + ": " + message;
    return result;
  };
  std::uint32_t num_moves = 0;
  if (!in.ReadU32(num_moves)) return fail("truncated move count");
  if (num_moves > in.remaining() / 5) {
    return fail("declared move count " + std::to_string(num_moves) +
                " exceeds the remaining payload");
  }
  std::vector<Move> moves;
  moves.reserve(num_moves);
  for (std::uint32_t i = 0; i < num_moves; ++i) {
    std::uint8_t type = 0;
    std::uint32_t node = 0;
    if (!in.ReadU8(type) || !in.ReadU32(node)) {
      return fail("truncated move table");
    }
    if (type > static_cast<std::uint8_t>(MoveType::kDelete)) {
      return fail("move " + std::to_string(i) + " has invalid type " +
                  std::to_string(type));
    }
    if (node >= kInvalidNode) {
      return fail("move " + std::to_string(i) + " node id out of range");
    }
    moves.push_back({static_cast<MoveType>(type), node});
  }
  if (in.remaining() != 0) {
    return fail(std::to_string(in.remaining()) +
                " trailing payload bytes after the move table");
  }
  result.schedule = Schedule(std::move(moves));
  result.ok = true;
  return result;
}

}  // namespace wrbpg
