// A WRBPG schedule S_G = (sigma_1, ..., sigma_t): an ordered move sequence.
//
// Schedules are produced by the algorithms in src/schedulers/ and consumed by
// core/Simulator (validation + cost) and exec/Executor (running the dataflow
// on real data). A Schedule is just the sequence; validity is relative to a
// (graph, budget) pair and established by Simulator::Simulate.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "core/move.h"

namespace wrbpg {

class Schedule {
 public:
  Schedule() = default;
  explicit Schedule(std::vector<Move> moves) : moves_(std::move(moves)) {}

  void Append(Move move) { moves_.push_back(move); }
  void Append(const Schedule& other) {
    moves_.insert(moves_.end(), other.moves_.begin(), other.moves_.end());
  }

  std::size_t size() const noexcept { return moves_.size(); }
  bool empty() const noexcept { return moves_.empty(); }
  const Move& operator[](std::size_t i) const { return moves_[i]; }

  const std::vector<Move>& moves() const noexcept { return moves_; }

  auto begin() const noexcept { return moves_.begin(); }
  auto end() const noexcept { return moves_.end(); }

  std::size_t CountType(MoveType type) const;

  // One move per line ("M3(v7)"), for traces and golden tests.
  std::string ToString() const;

  friend bool operator==(const Schedule&, const Schedule&) = default;

 private:
  std::vector<Move> moves_;
};

}  // namespace wrbpg
