#include "core/serialize.h"

#include <charconv>
#include <set>
#include <sstream>
#include <vector>

#include "core/graph_builder.h"
#include "core/types.h"

namespace wrbpg {
namespace {

std::vector<std::string> Tokenize(const std::string& line) {
  std::vector<std::string> tokens;
  std::istringstream in(line);
  std::string tok;
  while (in >> tok) {
    if (tok[0] == '#') break;
    tokens.push_back(tok);
  }
  return tokens;
}

bool ParseI64(const std::string& s, std::int64_t& out) {
  const auto [ptr, ec] =
      std::from_chars(s.data(), s.data() + s.size(), out);
  return ec == std::errc() && ptr == s.data() + s.size();
}

}  // namespace

std::string ToText(const Graph& graph) {
  std::ostringstream out;
  out << "wrbpg-graph v1\n";
  for (NodeId v = 0; v < graph.num_nodes(); ++v) {
    out << "node " << v << ' ' << graph.weight(v);
    if (!graph.name(v).empty()) out << ' ' << graph.name(v);
    out << '\n';
  }
  for (NodeId v = 0; v < graph.num_nodes(); ++v) {
    for (NodeId c : graph.children(v)) {
      out << "edge " << v << ' ' << c << '\n';
    }
  }
  return out.str();
}

std::string ToDot(const Graph& graph, const std::string& title) {
  std::ostringstream out;
  out << "digraph \"" << title << "\" {\n  rankdir=TB;\n";
  for (NodeId v = 0; v < graph.num_nodes(); ++v) {
    out << "  n" << v << " [label=\"";
    if (!graph.name(v).empty()) {
      out << graph.name(v);
    } else {
      out << 'v' << v;
    }
    out << "\\nw=" << graph.weight(v) << '"';
    if (graph.is_source(v)) out << ", shape=box";
    if (graph.is_sink(v)) out << ", shape=doublecircle";
    out << "];\n";
  }
  for (NodeId v = 0; v < graph.num_nodes(); ++v) {
    for (NodeId c : graph.children(v)) {
      out << "  n" << v << " -> n" << c << ";\n";
    }
  }
  out << "}\n";
  return out.str();
}

GraphParseResult ParseGraphText(const std::string& text) {
  GraphParseResult result;
  std::istringstream in(text);
  std::string line;
  GraphBuilder builder;
  std::set<std::pair<std::int64_t, std::int64_t>> seen_edges;
  bool header_seen = false;
  std::size_t lineno = 0;
  auto fail = [&](const std::string& message) {
    result.error = "line " + std::to_string(lineno) + ": " + message;
    return result;
  };
  // Dense ids are capped well below NodeId's range; anything larger is a
  // corrupt or hostile input, reported before it can wrap on a cast.
  constexpr std::int64_t kMaxNodeId = kInvalidNode - 1;
  while (std::getline(in, line)) {
    ++lineno;
    const auto tokens = Tokenize(line);
    if (tokens.empty()) continue;
    if (!header_seen) {
      if (tokens.size() != 2 || tokens[0] != "wrbpg-graph" ||
          tokens[1] != "v1") {
        return fail("expected header 'wrbpg-graph v1'");
      }
      header_seen = true;
      continue;
    }
    if (tokens[0] == "node") {
      if (tokens.size() < 3 || tokens.size() > 4) {
        return fail("node directive takes: node <id> <weight> [name]");
      }
      std::int64_t id = 0, weight = 0;
      if (!ParseI64(tokens[1], id) || !ParseI64(tokens[2], weight)) {
        return fail("malformed node id or weight");
      }
      if (id < 0 || id > kMaxNodeId) {
        return fail("node id " + tokens[1] + " out of range");
      }
      if (weight <= 0) {
        return fail("node weight must be positive, got " + tokens[2]);
      }
      if (id != builder.num_nodes()) {
        return fail("node ids must be dense and in order (expected " +
                    std::to_string(builder.num_nodes()) + ")");
      }
      builder.AddNode(weight, tokens.size() == 4 ? tokens[3] : std::string());
    } else if (tokens[0] == "edge") {
      if (tokens.size() != 3) return fail("edge directive takes: edge <u> <v>");
      std::int64_t u = 0, v = 0;
      if (!ParseI64(tokens[1], u) || !ParseI64(tokens[2], v)) {
        return fail("malformed edge endpoints");
      }
      if (u < 0 || u > kMaxNodeId || v < 0 || v > kMaxNodeId) {
        return fail("edge endpoint out of range");
      }
      if (u >= builder.num_nodes() || v >= builder.num_nodes()) {
        return fail("edge references undeclared node");
      }
      if (u == v) {
        return fail("self-loop on node " + tokens[1]);
      }
      if (!seen_edges.emplace(u, v).second) {
        return fail("duplicate edge (" + tokens[1] + "," + tokens[2] + ")");
      }
      builder.AddEdge(static_cast<NodeId>(u), static_cast<NodeId>(v));
    } else {
      return fail("unknown directive '" + tokens[0] + "'");
    }
  }
  if (!header_seen) {
    result.error = "empty input: missing 'wrbpg-graph v1' header";
    return result;
  }
  if (builder.num_nodes() == 0) {
    result.error = "truncated input: header present but no node directives";
    return result;
  }
  auto built = builder.Build();
  if (!built.ok) {
    result.error = built.error;
    return result;
  }
  result.graph = std::move(built.graph);
  result.ok = true;
  return result;
}

std::string ToText(const Schedule& schedule) {
  std::ostringstream out;
  for (const Move& m : schedule) {
    out << ToString(m.type) << ' ' << m.node << '\n';
  }
  return out.str();
}

ScheduleParseResult ParseScheduleText(const std::string& text) {
  ScheduleParseResult result;
  std::istringstream in(text);
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const auto tokens = Tokenize(line);
    if (tokens.empty()) continue;
    if (tokens.size() != 2) {
      result.error =
          "line " + std::to_string(lineno) + ": expected '<M1..M4> <node>'";
      return result;
    }
    MoveType type;
    if (tokens[0] == "M1") {
      type = MoveType::kLoad;
    } else if (tokens[0] == "M2") {
      type = MoveType::kStore;
    } else if (tokens[0] == "M3") {
      type = MoveType::kCompute;
    } else if (tokens[0] == "M4") {
      type = MoveType::kDelete;
    } else {
      result.error = "line " + std::to_string(lineno) + ": unknown move '" +
                     tokens[0] + "'";
      return result;
    }
    std::int64_t node = 0;
    if (!ParseI64(tokens[1], node) || node < 0) {
      result.error = "line " + std::to_string(lineno) + ": malformed node id";
      return result;
    }
    if (node > static_cast<std::int64_t>(kInvalidNode) - 1) {
      result.error =
          "line " + std::to_string(lineno) + ": node id out of range";
      return result;
    }
    result.schedule.Append({type, static_cast<NodeId>(node)});
  }
  result.ok = true;
  return result;
}

}  // namespace wrbpg

