// Fundamental types of the Weighted Red-Blue Pebble Game (WRBPG).
//
// Weights and budgets are positive 64-bit integers measured in *bits*. The
// paper (Sec 2.1) allows real weights of polynomial precision; the entire
// evaluation uses bit-widths (16-bit words, 32-bit accumulators), and integer
// weights keep the (node, budget) dynamic programs exact and hashable.
#pragma once

#include <cstdint>
#include <limits>

namespace wrbpg {

// Index of a node in a Graph. Dense, assigned by GraphBuilder in insertion
// order.
using NodeId = std::uint32_t;

inline constexpr NodeId kInvalidNode = std::numeric_limits<NodeId>::max();

// Node weight / fast-memory budget, in bits.
using Weight = std::int64_t;

// Sentinel for "no valid schedule under this budget" (Eq. 2's infinity).
inline constexpr Weight kInfiniteCost = std::numeric_limits<Weight>::max() / 4;

}  // namespace wrbpg
