// Schedule occupancy tracing and rendering.
//
// Turns a valid schedule into its fast-memory occupancy timeline (the total
// red weight after each move — the quantity Definition 2.1 bounds) plus an
// ASCII rendering for eyeballing where a schedule actually needs its
// budget. Used by the CLI's `trace` command and in tests to reason about
// peak placement.
#pragma once

#include <string>
#include <vector>

#include "core/graph.h"
#include "core/schedule.h"

namespace wrbpg {

struct OccupancyTrace {
  bool ok = false;
  std::string error;
  std::vector<Weight> occupancy_bits;  // after each move, schedule.size() long
  Weight peak_bits = 0;
  // First move attaining the peak, as a 0-based index into occupancy_bits.
  // Human-facing output (RenderOccupancy's header, the CLI trace verb)
  // reports it 1-based, consistent with the "of <move count>" total.
  std::size_t peak_index = 0;
};

// Replays the schedule (enforcing all rules) and records occupancy.
OccupancyTrace TraceOccupancy(const Graph& graph, Weight budget,
                              const Schedule& schedule);

// Fixed-height ASCII chart (rows = occupancy buckets, cols = time,
// downsampled to at most `width` columns).
std::string RenderOccupancy(const OccupancyTrace& trace, Weight budget,
                            int width = 72, int height = 10);

}  // namespace wrbpg
