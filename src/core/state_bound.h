// Admissible per-state lower bounds on remaining weighted I/O — the A*
// heuristic of the exact search engine (DESIGN.md §9/§11/§14).
//
// For a pebbling configuration (red, blue) and a goal (all sinks blue
// and/or a required final red set), h(red, blue) lower-bounds the
// weighted cost every valid completion must still pay:
//
//   store term  — every sink not yet blue needs one M2, costing w_v
//                 (blue pebbles are never removed, so the store is still
//                 owed no matter what else happens);
//   load term   — every source in the *need closure* that is not red must
//                 be (re-)loaded at least once: the closure walks upward
//                 from must-become-red targets through nodes that are
//                 neither red nor blue (such nodes can only be computed,
//                 which forces their parents red in turn). Sources cannot
//                 be computed, so a closure source pays its M1.
//
// At the start state (no red, sources blue) the two terms are exactly
// Proposition 2.4's algorithmic lower bound — h generalizes it to every
// intermediate state, which is what makes it an A* heuristic rather than
// a one-shot estimate. The closure also detects dead states: a needed
// source with no blue pebble can never be loaded, and a needed compute
// whose own Prop 2.3 footprint (w_v + sum of parent weights) exceeds the
// budget can never fire — both return kInfiniteCost, turning the bound
// into a pruning oracle as well.
//
// Admissibility (h <= true remaining optimal cost) is pinned exhaustively
// in tests/state_bound_test.cc over every (red, blue) mask pair of small
// graphs. h is NOT consistent — a single store can discharge both its own
// store term and an upstream load term — so the searcher reopens states
// (see brute_force.cc); admissibility alone keeps the optimum exact.
//
// INCREMENTAL EVALUATION (DESIGN.md §14). A move toggles one bit of
// (red, blue), and for most moves the successor's h follows from the
// parent's by an O(1) (or O(words)) delta — the expensive closure walk is
// only ever re-run when the move can actually change the closure:
//
//   M2 store v   need is INVARIANT: v is red, and the closure lives in
//                ~red, so v is in neither need(s) nor need(c); targets
//                gain nothing (v is excluded by ~red either way). Only
//                the store term moves: -w_v iff v is a sink still owed
//                its M2. Exact, never re-walks.
//   M1 load v    v was blue, so the walk never propagated THROUGH v
//                (blue stops the frontier); red-ing v just removes it
//                from the need set: load -w_v iff v was a needed source.
//                Exact, never re-walks.
//   M3 compute v need loses EXACTLY {v}: legality makes every parent of
//                v red, and the walk masks propagation with ~red, so no
//                member's derivation chain ever passed through v. v is a
//                non-source, so neither term moves — h is invariant.
//                Exact, never re-walks.
//   M4 delete v  v can only re-enter the closure as a target
//                (required-red or unstored sink) or as a parent of a
//                needed un-pebbled node. If neither, need is invariant.
//                Otherwise the change is purely INCREMENTAL: every new
//                member's derivation chain passes through v, so re-seed
//                the walk at v alone and extend need(s) — exact, and far
//                cheaper than a full re-walk.
//
// Prepare() runs one full walk for the state being expanded and records
// (need, store, load); EvalMoveFast() applies the exact deltas above and
// reports whether the move needed the slow path; EvalMoveSlow() is the
// fallback (full re-walk for M3, seeded extension for M4). EvaluateMove()
// composes the two and is pinned ≡ fresh Evaluate() in
// tests/state_bound_test.cc over all mask pairs of small graphs.
//
// Supports graphs of ANY size. Configurations of graphs with at most 32
// nodes use the packed uint32 mask fast path the exact engine's inline
// states are built on; wider graphs use the word-span overload, whose
// masks are arrays of 64-bit words (node v lives in word v/64, bit v%64)
// with WordsPerColor() words per color. The word-span Evaluate needs a
// caller-owned WideScratch so concurrent evaluations (parallel frontier
// expansion) never share closure buffers. All precomputation is per
// graph; Evaluate is allocation-free and iterates only over set bits of
// the masks involved.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/graph.h"
#include "core/graph_masks.h"
#include "core/move.h"
#include "core/types.h"

namespace wrbpg {

class StateBound {
 public:
  // `required_red` are nodes that must hold red pebbles at the end (a
  // bitmask over node ids; only ids < 64 are representable, which covers
  // every memory-state game the engines play); `require_sinks_blue` adds
  // the game's normal stopping condition.
  //
  // `build_wide` controls whether the word-span machinery is built: the
  // packed search path passes false so a ≤32-node StateBound carries no
  // wide buffers at all (graphs above 32 nodes always build them — the
  // packed masks cannot represent those).
  StateBound(const Graph& graph, Weight budget, std::uint64_t required_red,
             bool require_sinks_blue, bool build_wide = true);

  // Admissible lower bound on the remaining weighted I/O from (red, blue);
  // kInfiniteCost when no valid completion exists from this state. Packed
  // fast path, only valid when the graph has at most 32 nodes.
  Weight Evaluate(std::uint32_t red, std::uint32_t blue) const;

  // Reusable closure buffers for the word-span Evaluate. One per calling
  // thread; sized on first use and never shrunk. `tmp` additionally
  // carries toggled successor masks for the incremental slow paths.
  struct WideScratch {
    std::vector<std::uint64_t> need;
    std::vector<std::uint64_t> frontier;
    std::vector<std::uint64_t> next;
    std::vector<std::uint64_t> tmp;
  };

  // Word-span Evaluate for graphs of any width: `red` and `blue` each
  // point at WordsPerColor() words. Requires build_wide.
  Weight Evaluate(const std::uint64_t* red, const std::uint64_t* blue,
                  WideScratch& scratch) const;

  // ---- Incremental evaluation (see the header comment's move table) ----

  // Expansion context for the packed path: the parent state's closure,
  // split into the exactly-maintained store term and the cached-closure
  // load term. Populated by Prepare(); read by EvalMove*().
  struct PackedCtx {
    std::uint32_t red = 0;
    std::uint32_t blue = 0;
    std::uint32_t need = 0;
    Weight store = 0;
    Weight load = 0;
    bool dead = false;
  };

  // Expansion context for the word-span path. `need` is sized by
  // Prepare(); red/blue are NOT copied — EvalMove*() take the parent
  // masks explicitly so callers can point at interner-owned words.
  struct WideCtx {
    std::vector<std::uint64_t> need;
    Weight store = 0;
    Weight load = 0;
    bool dead = false;
  };

  // One full closure walk for the state about to be expanded.
  void Prepare(std::uint32_t red, std::uint32_t blue, PackedCtx& ctx) const;
  void Prepare(const std::uint64_t* red, const std::uint64_t* blue,
               WideCtx& ctx, WideScratch& scratch) const;

  // Exact O(1)/O(words) delta for the moves whose closure is provably
  // unchanged (M1, M2, M3 with v ∉ need, M4 with no re-entry). Returns
  // true and writes *h on the fast path; returns false when the move
  // needs EvalMoveSlow. `move` must be legal in the ctx state.
  bool EvalMoveFast(const PackedCtx& ctx, MoveType type, NodeId v,
                    Weight* h) const;
  bool EvalMoveFast(const WideCtx& ctx, const std::uint64_t* red,
                    const std::uint64_t* blue, MoveType type, NodeId v,
                    Weight* h) const;

  // Slow path: restricted re-walk for M3 (kept for direct callers and
  // differential tests — EvalMoveFast answers every legal M3 exactly, so
  // EvaluateMove never lands here for computes), seeded incremental
  // extension for M4 (monotone closure growth through v).
  Weight EvalMoveSlow(const PackedCtx& ctx, MoveType type, NodeId v) const;
  Weight EvalMoveSlow(const WideCtx& ctx, const std::uint64_t* red,
                      const std::uint64_t* blue, MoveType type, NodeId v,
                      WideScratch& scratch) const;

  // Fast-else-slow composition; h of the successor of applying `move` to
  // the ctx state. Pinned ≡ fresh Evaluate of the successor in tests.
  Weight EvaluateMove(const PackedCtx& ctx, MoveType type, NodeId v) const {
    Weight h = 0;
    if (EvalMoveFast(ctx, type, v, &h)) return h;
    return EvalMoveSlow(ctx, type, v);
  }
  Weight EvaluateMove(const WideCtx& ctx, const std::uint64_t* red,
                      const std::uint64_t* blue, MoveType type, NodeId v,
                      WideScratch& scratch) const {
    Weight h = 0;
    if (EvalMoveFast(ctx, red, blue, type, v, &h)) return h;
    return EvalMoveSlow(ctx, red, blue, type, v, scratch);
  }

  // Evaluate at the canonical start state (no red, sources blue): the
  // budget-aware generalization of AlgorithmicLowerBound. Used by the
  // analysis layer to tighten budget-scan bands and as the anytime
  // engine's day-zero lower bound. The scratch overload reuses a
  // caller-owned buffer on the wide path (speculative robust-chain
  // stages call this repeatedly).
  Weight StartBound() const;
  Weight StartBound(WideScratch& scratch) const;

  // Words per color mask for the word-span overload: ceil(n / 64).
  std::size_t WordsPerColor() const { return words_; }

 private:
  // Shared word-span closure walk: fills `need` (words_ words, caller
  // zeroed), accumulates the two terms, and returns false on a dead
  // state. Both the wide Evaluate and the wide Prepare funnel through
  // this so the full and incremental paths cannot drift.
  bool WideWalk(const std::uint64_t* red, const std::uint64_t* blue,
                std::uint64_t* need, WideScratch& scratch, Weight* store,
                Weight* load) const;

  const Graph& graph_;
  Weight budget_;
  bool require_sinks_blue_;
  std::size_t words_ = 1;

  // Packed masks (graphs of <= 32 nodes; undefined above).
  std::uint32_t required_red32_ = 0;
  std::uint32_t sources_mask_ = 0;
  std::uint32_t sinks_mask_ = 0;
  // parents_mask_[v] / children_mask_[v]: bitmasks of H(v) and of the
  // out-neighborhood (children gate the M4 delta test).
  std::uint32_t parents_mask_[32] = {};
  std::uint32_t children_mask_[32] = {};

  // Word-span adjacency + legality masks (built only when build_wide, or
  // unconditionally above 32 nodes). Shared layout with the simulator.
  std::vector<std::uint64_t> wide_required_red_;
  std::optional<GraphMasks> wide_masks_;

  // Prop 2.3 footprint w_v + sum_{p in H(v)} w_p of each compute.
  std::vector<Weight> compute_footprint_;
};

}  // namespace wrbpg
