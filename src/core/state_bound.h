// Admissible per-state lower bounds on remaining weighted I/O — the A*
// heuristic of the exact search engine (DESIGN.md §9/§11).
//
// For a pebbling configuration (red, blue) and a goal (all sinks blue
// and/or a required final red set), h(red, blue) lower-bounds the
// weighted cost every valid completion must still pay:
//
//   store term  — every sink not yet blue needs one M2, costing w_v
//                 (blue pebbles are never removed, so the store is still
//                 owed no matter what else happens);
//   load term   — every source in the *need closure* that is not red must
//                 be (re-)loaded at least once: the closure walks upward
//                 from must-become-red targets through nodes that are
//                 neither red nor blue (such nodes can only be computed,
//                 which forces their parents red in turn). Sources cannot
//                 be computed, so a closure source pays its M1.
//
// At the start state (no red, sources blue) the two terms are exactly
// Proposition 2.4's algorithmic lower bound — h generalizes it to every
// intermediate state, which is what makes it an A* heuristic rather than
// a one-shot estimate. The closure also detects dead states: a needed
// source with no blue pebble can never be loaded, and a needed compute
// whose own Prop 2.3 footprint (w_v + sum of parent weights) exceeds the
// budget can never fire — both return kInfiniteCost, turning the bound
// into a pruning oracle as well.
//
// Admissibility (h <= true remaining optimal cost) is pinned exhaustively
// in tests/state_bound_test.cc over every (red, blue) mask pair of small
// graphs. h is NOT consistent — a single store can discharge both its own
// store term and an upstream load term — so the searcher reopens states
// (see brute_force.cc); admissibility alone keeps the optimum exact.
//
// Supports graphs of ANY size. Configurations of graphs with at most 32
// nodes use the packed uint32 mask fast path the exact engine's inline
// states are built on; wider graphs use the word-span overload, whose
// masks are arrays of 64-bit words (node v lives in word v/64, bit v%64)
// with WordsPerColor() words per color. The word-span Evaluate needs a
// caller-owned WideScratch so concurrent evaluations (parallel frontier
// expansion) never share closure buffers. All precomputation is per
// graph; Evaluate is allocation-free and iterates only over set bits of
// the masks involved.
#pragma once

#include <cstdint>
#include <vector>

#include "core/graph.h"
#include "core/types.h"

namespace wrbpg {

class StateBound {
 public:
  // `required_red` are nodes that must hold red pebbles at the end (a
  // bitmask over node ids; only ids < 64 are representable, which covers
  // every memory-state game the engines play); `require_sinks_blue` adds
  // the game's normal stopping condition.
  StateBound(const Graph& graph, Weight budget, std::uint64_t required_red,
             bool require_sinks_blue);

  // Admissible lower bound on the remaining weighted I/O from (red, blue);
  // kInfiniteCost when no valid completion exists from this state. Packed
  // fast path, only valid when the graph has at most 32 nodes.
  Weight Evaluate(std::uint32_t red, std::uint32_t blue) const;

  // Reusable closure buffers for the word-span Evaluate. One per calling
  // thread; sized on first use and never shrunk.
  struct WideScratch {
    std::vector<std::uint64_t> need;
    std::vector<std::uint64_t> frontier;
    std::vector<std::uint64_t> next;
  };

  // Word-span Evaluate for graphs of any width: `red` and `blue` each
  // point at WordsPerColor() words.
  Weight Evaluate(const std::uint64_t* red, const std::uint64_t* blue,
                  WideScratch& scratch) const;

  // Evaluate at the canonical start state (no red, sources blue): the
  // budget-aware generalization of AlgorithmicLowerBound. Used by the
  // analysis layer to tighten budget-scan bands and as the anytime
  // engine's day-zero lower bound.
  Weight StartBound() const;

  // Words per color mask for the word-span overload: ceil(n / 64).
  std::size_t WordsPerColor() const { return words_; }

 private:
  const Graph& graph_;
  Weight budget_;
  bool require_sinks_blue_;
  std::size_t words_ = 1;

  // Packed masks (graphs of <= 32 nodes; undefined above).
  std::uint32_t required_red32_ = 0;
  std::uint32_t sources_mask_ = 0;
  std::uint32_t sinks_mask_ = 0;
  // parents_mask_[v]: bitmask of H(v).
  std::uint32_t parents_mask_[32] = {};

  // Word-array masks (any width). Laid out as words_ words per entry;
  // wide_parents_ holds num_nodes() consecutive masks.
  std::vector<std::uint64_t> wide_required_red_;
  std::vector<std::uint64_t> wide_sources_;
  std::vector<std::uint64_t> wide_sinks_;
  std::vector<std::uint64_t> wide_parents_;

  // Prop 2.3 footprint w_v + sum_{p in H(v)} w_p of each compute.
  std::vector<Weight> compute_footprint_;
};

}  // namespace wrbpg
