#include "core/graph_builder.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <set>
#include <utility>

namespace wrbpg {

NodeId GraphBuilder::AddNode(Weight weight, std::string name) {
  weights_.push_back(weight);
  names_.push_back(std::move(name));
  return static_cast<NodeId>(weights_.size() - 1);
}

void GraphBuilder::AddEdge(NodeId u, NodeId v) { edges_.emplace_back(u, v); }

GraphBuilder::BuildResult GraphBuilder::Build(
    const BuildOptions& options) const {
  BuildResult result;
  const NodeId n = num_nodes();

  for (NodeId v = 0; v < n; ++v) {
    if (weights_[v] <= 0) {
      result.error = "node " + std::to_string(v) + " has non-positive weight " +
                     std::to_string(weights_[v]);
      return result;
    }
  }

  std::set<std::pair<NodeId, NodeId>> seen;
  for (const auto& [u, v] : edges_) {
    if (u >= n || v >= n) {
      result.error = "edge (" + std::to_string(u) + "," + std::to_string(v) +
                     ") references a node out of range";
      return result;
    }
    if (u == v) {
      result.error = "self-loop on node " + std::to_string(u);
      return result;
    }
    if (!seen.emplace(u, v).second) {
      result.error = "duplicate edge (" + std::to_string(u) + "," +
                     std::to_string(v) + ")";
      return result;
    }
  }

  Graph g;
  g.weights_ = weights_;
  g.names_ = names_;
  g.total_weight_ = 0;
  for (Weight w : weights_) g.total_weight_ += w;

  // CSR adjacency via counting sort over the edge list.
  g.parent_offsets_.assign(n + 1, 0);
  g.child_offsets_.assign(n + 1, 0);
  for (const auto& [u, v] : edges_) {
    ++g.parent_offsets_[v + 1];
    ++g.child_offsets_[u + 1];
  }
  for (NodeId v = 0; v < n; ++v) {
    g.parent_offsets_[v + 1] += g.parent_offsets_[v];
    g.child_offsets_[v + 1] += g.child_offsets_[v];
  }
  g.parent_data_.resize(edges_.size());
  g.child_data_.resize(edges_.size());
  {
    std::vector<std::size_t> pfill(g.parent_offsets_.begin(),
                                   g.parent_offsets_.end() - 1);
    std::vector<std::size_t> cfill(g.child_offsets_.begin(),
                                   g.child_offsets_.end() - 1);
    for (const auto& [u, v] : edges_) {
      g.parent_data_[pfill[v]++] = u;
      g.child_data_[cfill[u]++] = v;
    }
  }
  // Deterministic neighbor order (edge insertion order is already stable, but
  // sorting makes equality of graphs independent of construction order).
  for (NodeId v = 0; v < n; ++v) {
    std::sort(g.parent_data_.begin() +
                  static_cast<std::ptrdiff_t>(g.parent_offsets_[v]),
              g.parent_data_.begin() +
                  static_cast<std::ptrdiff_t>(g.parent_offsets_[v + 1]));
    std::sort(g.child_data_.begin() +
                  static_cast<std::ptrdiff_t>(g.child_offsets_[v]),
              g.child_data_.begin() +
                  static_cast<std::ptrdiff_t>(g.child_offsets_[v + 1]));
  }

  for (NodeId v = 0; v < n; ++v) {
    if (g.parents(v).empty()) g.sources_.push_back(v);
    if (g.children(v).empty()) g.sinks_.push_back(v);
  }

  if (options.require_disjoint_sources_sinks) {
    for (NodeId v = 0; v < n; ++v) {
      if (g.parents(v).empty() && g.children(v).empty()) {
        result.error = "node " + std::to_string(v) +
                       " is both source and sink (isolated); the WRBPG "
                       "assumes A(G) and Z(G) are disjoint";
        return result;
      }
    }
  }

  // Kahn's algorithm: topological order + acyclicity check.
  std::vector<std::size_t> remaining(n);
  std::vector<NodeId> ready;
  for (NodeId v = 0; v < n; ++v) {
    remaining[v] = g.in_degree(v);
    if (remaining[v] == 0) ready.push_back(v);
  }
  g.topo_order_.reserve(n);
  for (std::size_t head = 0; head < ready.size(); ++head) {
    const NodeId v = ready[head];
    g.topo_order_.push_back(v);
    for (NodeId c : g.children(v)) {
      if (--remaining[c] == 0) ready.push_back(c);
    }
  }
  if (g.topo_order_.size() != n) {
    result.error = "graph contains a cycle";
    return result;
  }

  result.graph = std::move(g);
  result.ok = true;
  return result;
}

Graph GraphBuilder::BuildOrDie(const BuildOptions& options) const {
  BuildResult r = Build(options);
  if (!r.ok) {
    std::fprintf(stderr, "GraphBuilder::BuildOrDie: %s\n", r.error.c_str());
    std::abort();
  }
  return std::move(r.graph);
}

}  // namespace wrbpg
