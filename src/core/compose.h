// Modular composition of CDAGs and their schedules.
//
// The paper's framing (Sec 1): express computational tasks in parts, attach
// an efficient pebbling algorithm to each part, then stitch the minimal
// module schedules into a schedule for the overall task.
//
// ComposeSequential() splices producer sinks onto consumer sources: the
// consumer's designated source nodes are replaced by the producer's sink
// nodes, yielding one CDAG for the fused task. StitchSchedules() then
// concatenates module schedules translated into the composite's node ids —
// valid by construction, because the producer schedule leaves blue pebbles
// on exactly the values the consumer schedule's M1 moves expect (module
// boundaries communicate through slow memory, the natural contract between
// independently scheduled parts).
//
// Modules must end with fast memory empty (all red pebbles deleted) for the
// stitched budget to be the max of the module budgets; every scheduler in
// src/schedulers/ that produces full-game schedules satisfies this.
//
// Stitched cost = producer cost + consumer cost: the composition is
// generally not globally optimal (a fused scheduler could forward values
// in fast memory), but it is valid at the max of the module budgets and
// inherits each module's optimality within its part — the paper's
// modularity trade.
#pragma once

#include <string>
#include <vector>

#include "core/graph.h"
#include "core/schedule.h"

namespace wrbpg {

struct Composition {
  Graph graph;
  // Node-id translations from each part into the composite.
  std::vector<NodeId> producer_to_composite;  // indexed by producer NodeId
  std::vector<NodeId> consumer_to_composite;  // indexed by consumer NodeId
  bool ok = false;
  std::string error;
};

// Fuses `producer` and `consumer`: consumer node bindings[i].consumer_source
// (a source of `consumer`) becomes producer node bindings[i].producer_sink
// (a sink of `producer`). Weights of bound pairs must match. Unbound
// consumer sources remain sources of the composite.
struct Binding {
  NodeId producer_sink;
  NodeId consumer_source;
};
Composition ComposeSequential(const Graph& producer, const Graph& consumer,
                              const std::vector<Binding>& bindings);

// Translates a module schedule into composite ids.
Schedule TranslateSchedule(const Schedule& schedule,
                           const std::vector<NodeId>& to_composite);

// producer_schedule followed by consumer_schedule, both translated.
Schedule StitchSchedules(const Composition& composition,
                         const Schedule& producer_schedule,
                         const Schedule& consumer_schedule);

}  // namespace wrbpg
