#include "core/analysis.h"

#include <algorithm>
#include <cassert>

namespace wrbpg {

Weight AlgorithmicLowerBound(const Graph& graph) {
  Weight sum = 0;
  for (NodeId v : graph.sources()) sum += graph.weight(v);
  for (NodeId v : graph.sinks()) sum += graph.weight(v);
  return sum;
}

Weight MinValidBudget(const Graph& graph) {
  Weight best = 0;
  for (NodeId v = 0; v < graph.num_nodes(); ++v) {
    if (graph.is_source(v)) continue;
    Weight need = graph.weight(v);
    for (NodeId p : graph.parents(v)) need += graph.weight(p);
    best = std::max(best, need);
  }
  // Sources must also fit alone for their initial M1 (implied by the above
  // whenever a source has a child, which disjointness guarantees).
  for (NodeId v : graph.sources()) best = std::max(best, graph.weight(v));
  return best;
}

bool ScheduleExists(const Graph& graph, Weight budget) {
  return budget >= MinValidBudget(graph);
}

std::optional<Weight> FindMinimumFastMemory(const CostFn& cost_fn,
                                            Weight target_cost,
                                            const MinMemoryOptions& options) {
  assert(options.step > 0);
  if (options.hi < options.lo) return std::nullopt;
  const Weight steps = (options.hi - options.lo) / options.step;

  auto budget_at = [&](Weight k) { return options.lo + k * options.step; };
  auto expired = [&] {
    return options.cancel != nullptr && options.cancel->cancelled();
  };
  auto achieves = [&](Weight k) {
    return cost_fn(budget_at(k)) <= target_cost;
  };

  if (options.monotone) {
    // Invariant: achieving budgets form a suffix of the scanned grid.
    if (expired() || !achieves(steps)) return std::nullopt;
    Weight lo = 0, hi = steps;  // hi always achieves
    while (lo < hi) {
      if (expired()) return std::nullopt;
      const Weight mid = lo + (hi - lo) / 2;
      if (achieves(mid)) {
        hi = mid;
      } else {
        lo = mid + 1;
      }
    }
    return budget_at(hi);
  }

  for (Weight k = 0; k <= steps; ++k) {
    if (expired()) return std::nullopt;
    if (achieves(k)) return budget_at(k);
  }
  return std::nullopt;
}

}  // namespace wrbpg
