#include "core/analysis.h"

#include <algorithm>
#include <cassert>
#include <optional>

#include "obs/metrics.h"
#include "obs/span.h"
#include "util/thread_pool.h"

namespace wrbpg {
namespace {

// Sweep-level observability: how many cost probes actually ran vs. how
// many the analytic bands (Prop 2.3 / state_bound) let us skip. Both
// counters are write-only — the sweeps never read them back.
const obs::Counter& ProbesEvaluated() {
  static const obs::Counter c("analysis.probes_evaluated");
  return c;
}
const obs::Counter& ProbesSkipped() {
  static const obs::Counter c("analysis.probes_skipped");
  return c;
}

}  // namespace

Weight AlgorithmicLowerBound(const Graph& graph) {
  Weight sum = 0;
  for (NodeId v : graph.sources()) sum += graph.weight(v);
  for (NodeId v : graph.sinks()) sum += graph.weight(v);
  return sum;
}

Weight MinValidBudget(const Graph& graph) {
  Weight best = 0;
  for (NodeId v = 0; v < graph.num_nodes(); ++v) {
    if (graph.is_source(v)) continue;
    Weight need = graph.weight(v);
    for (NodeId p : graph.parents(v)) need += graph.weight(p);
    best = std::max(best, need);
  }
  // Sources must also fit alone for their initial M1 (implied by the above
  // whenever a source has a child, which disjointness guarantees).
  for (NodeId v : graph.sources()) best = std::max(best, graph.weight(v));
  return best;
}

bool ScheduleExists(const Graph& graph, Weight budget) {
  return budget >= MinValidBudget(graph);
}

std::optional<Weight> FindMinimumFastMemory(const CostFn& cost_fn,
                                            Weight target_cost,
                                            const MinMemoryOptions& options) {
  assert(options.step > 0);
  if (options.hi < options.lo) return std::nullopt;
  const obs::ScopedSpan span("analysis.min_memory");
  const Weight steps = (options.hi - options.lo) / options.step;

  auto budget_at = [&](Weight k) { return options.lo + k * options.step; };

  // Analytic bands (state_bound derivation, DESIGN.md §9): no budget can
  // push the cost below an admissible lower bound, and no budget below
  // MinValidBudget admits any schedule at all. Either fact lets us skip
  // probes without changing the answer.
  Weight first_k = 0;
  if (options.graph != nullptr && target_cost < kInfiniteCost) {
    if (target_cost < AlgorithmicLowerBound(*options.graph)) {
      return std::nullopt;
    }
    const Weight min_budget = MinValidBudget(*options.graph);
    if (budget_at(steps) < min_budget) return std::nullopt;
    while (first_k < steps && budget_at(first_k) < min_budget) ++first_k;
  }
  ProbesSkipped().Add(static_cast<std::uint64_t>(first_k));
  auto expired = [&] {
    return options.cancel != nullptr && options.cancel->cancelled();
  };
  auto achieves = [&](Weight k) {
    ProbesEvaluated().Add(1);
    return cost_fn(budget_at(k)) <= target_cost;
  };

  if (options.monotone) {
    // Invariant: achieving budgets form a suffix of the scanned grid.
    if (expired() || !achieves(steps)) return std::nullopt;
    Weight lo = first_k, hi = steps;  // hi always achieves
    while (lo < hi) {
      if (expired()) return std::nullopt;
      const Weight mid = lo + (hi - lo) / 2;
      if (achieves(mid)) {
        hi = mid;
      } else {
        lo = mid + 1;
      }
    }
    return budget_at(hi);
  }

  const std::size_t threads = ResolveThreadCount(options.threads);
  if (threads > 1) {
    // Probe budgets in parallel blocks, ascending. Every budget in a block
    // is evaluated (no early exit inside a block), and the smallest
    // achieving budget of the first successful block wins — exactly the
    // budget the sequential scan below would return, at any thread count.
    ThreadPool pool(threads);
    const Weight block = static_cast<Weight>(threads) * 2;
    std::vector<char> achieved(static_cast<std::size_t>(block));
    for (Weight base = first_k; base <= steps; base += block) {
      if (expired()) return std::nullopt;
      const Weight hi = std::min(steps, base + block - 1);
      std::fill(achieved.begin(), achieved.end(), 0);
      ParallelFor(pool, base, hi + 1, [&](std::int64_t k) {
        achieved[static_cast<std::size_t>(k - base)] = achieves(k) ? 1 : 0;
      });
      for (Weight k = base; k <= hi; ++k) {
        if (achieved[static_cast<std::size_t>(k - base)] != 0) {
          return budget_at(k);
        }
      }
    }
    return std::nullopt;
  }

  for (Weight k = first_k; k <= steps; ++k) {
    if (expired()) return std::nullopt;
    if (achieves(k)) return budget_at(k);
  }
  return std::nullopt;
}

std::vector<Weight> EvaluateBudgets(const CostFn& cost_fn,
                                    const std::vector<Weight>& budgets,
                                    const BudgetSweepOptions& options) {
  const obs::ScopedSpan span("analysis.budget_sweep");
  std::vector<Weight> costs(budgets.size(), kInfiniteCost);
  const auto expired = [&] {
    return options.cancel != nullptr && options.cancel->cancelled();
  };
  // Infeasibility band (Prop 2.3): below MinValidBudget every scheduler
  // returns kInfiniteCost, which the vector already holds — skip the probe.
  const Weight min_budget =
      options.graph != nullptr ? MinValidBudget(*options.graph) : 0;
  const auto probe = [&](std::size_t idx) {
    if (budgets[idx] >= min_budget) {
      ProbesEvaluated().Add(1);
      costs[idx] = cost_fn(budgets[idx]);
    } else {
      ProbesSkipped().Add(1);
    }
  };
  const std::size_t threads = ResolveThreadCount(options.threads);
  if (threads > 1 && budgets.size() > 1) {
    ThreadPool pool(threads);
    ParallelFor(pool, 0, static_cast<std::int64_t>(budgets.size()),
                [&](std::int64_t i) {
                  if (expired()) return;
                  probe(static_cast<std::size_t>(i));
                });
    return costs;
  }
  for (std::size_t i = 0; i < budgets.size(); ++i) {
    if (expired()) break;
    probe(i);
  }
  return costs;
}

}  // namespace wrbpg
