#include "core/schedule.h"

#include <algorithm>

namespace wrbpg {

std::size_t Schedule::CountType(MoveType type) const {
  return static_cast<std::size_t>(
      std::count_if(moves_.begin(), moves_.end(),
                    [type](const Move& m) { return m.type == type; }));
}

std::string Schedule::ToString() const {
  std::string out;
  for (const Move& m : moves_) {
    out += wrbpg::ToString(m);
    out += '\n';
  }
  return out;
}

}  // namespace wrbpg
