// Basic WRBPG properties (Sec 2.2) and the optimization targets of Sec 2.3.
#pragma once

#include <functional>
#include <optional>

#include "core/graph.h"
#include "core/types.h"
#include "util/cancel.h"

namespace wrbpg {

// Proposition 2.4: Cost(S_G) >= sum_{v in A(G)} w_v + sum_{v in Z(G)} w_v
// for every valid schedule. Widely used as the best-case I/O estimate.
Weight AlgorithmicLowerBound(const Graph& graph);

// The smallest budget for which a valid schedule exists: by Proposition 2.3
// this is max over non-source v of (w_v + sum_{p in H(v)} w_p).
Weight MinValidBudget(const Graph& graph);

// Proposition 2.3: a valid WRBPG schedule exists iff budget >= MinValidBudget.
bool ScheduleExists(const Graph& graph, Weight budget);

// Evaluates a scheduler at a budget and returns the weighted cost of the
// schedule it produces (kInfiniteCost when no schedule exists under the
// budget). Schedulers adapt themselves to this signature for budget searches.
using CostFn = std::function<Weight(Weight budget)>;

struct MinMemoryOptions {
  // Budgets scanned are lo, lo+step, lo+2*step, ..., <= hi. The paper
  // reports fast memory sizes in 16-bit words, i.e. step = 16.
  Weight lo = 1;
  Weight hi = 0;  // inclusive upper limit of the scan
  Weight step = 1;
  // When the scheduler's cost is monotone non-increasing in the budget
  // (true for the optimal DP schedulers), binary search is used; otherwise
  // a linear scan from lo upward finds the first achieving budget.
  bool monotone = false;
  // Cooperative cancellation, polled before every cost_fn probe. When the
  // token fires mid-search the result is nullopt (indistinguishable from
  // "no scanned budget achieves the target" — callers that care should
  // check the token afterwards).
  const CancelToken* cancel = nullptr;
};

// Definition 2.6: the smallest scanned budget whose schedule cost equals
// `target_cost` (normally AlgorithmicLowerBound(graph)). Returns nullopt if
// no scanned budget achieves it.
std::optional<Weight> FindMinimumFastMemory(const CostFn& cost_fn,
                                            Weight target_cost,
                                            const MinMemoryOptions& options);

}  // namespace wrbpg
