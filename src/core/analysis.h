// Basic WRBPG properties (Sec 2.2) and the optimization targets of Sec 2.3.
#pragma once

#include <cstddef>
#include <functional>
#include <optional>
#include <vector>

#include "core/graph.h"
#include "core/types.h"
#include "util/cancel.h"

namespace wrbpg {

// Proposition 2.4: Cost(S_G) >= sum_{v in A(G)} w_v + sum_{v in Z(G)} w_v
// for every valid schedule. Widely used as the best-case I/O estimate.
Weight AlgorithmicLowerBound(const Graph& graph);

// The smallest budget for which a valid schedule exists: by Proposition 2.3
// this is max over non-source v of (w_v + sum_{p in H(v)} w_p).
Weight MinValidBudget(const Graph& graph);

// Proposition 2.3: a valid WRBPG schedule exists iff budget >= MinValidBudget.
bool ScheduleExists(const Graph& graph, Weight budget);

// Evaluates a scheduler at a budget and returns the weighted cost of the
// schedule it produces (kInfiniteCost when no schedule exists under the
// budget). Schedulers adapt themselves to this signature for budget searches.
using CostFn = std::function<Weight(Weight budget)>;

struct MinMemoryOptions {
  // Budgets scanned are lo, lo+step, lo+2*step, ..., <= hi. The paper
  // reports fast memory sizes in 16-bit words, i.e. step = 16.
  Weight lo = 1;
  Weight hi = 0;  // inclusive upper limit of the scan
  Weight step = 1;
  // When the scheduler's cost is monotone non-increasing in the budget
  // (true for the optimal DP schedulers), binary search is used; otherwise
  // a linear scan from lo upward finds the first achieving budget.
  bool monotone = false;
  // Cooperative cancellation, polled before every cost_fn probe. When the
  // token fires mid-search the result is nullopt (indistinguishable from
  // "no scanned budget achieves the target" — callers that care should
  // check the token afterwards).
  const CancelToken* cancel = nullptr;
  // Worker threads for the non-monotone linear scan: budgets are probed in
  // parallel blocks and the smallest achieving budget wins, so the answer
  // is identical to a sequential scan. The monotone binary search stays
  // sequential — each probe decides the next one, there is nothing to fan
  // out. cost_fn MUST be safe to call concurrently when threads != 1
  // (stateless schedulers like the brute-force oracle are; memoized DPs
  // such as DwtOptimalScheduler are not — keep those at 1). 0 selects
  // DefaultSearchThreads().
  std::size_t threads = 1;
  // Optional analytic band-tightening (derived from the state_bound /
  // Prop 2.3-2.4 machinery of the exact engine). When set, budgets below
  // MinValidBudget(*graph) are skipped without probing — cost_fn is
  // kInfiniteCost there by the scheduler contract — and a target_cost
  // below AlgorithmicLowerBound(*graph) short-circuits to nullopt, since
  // no budget can beat an admissible lower bound. Results are identical
  // to a graph-less scan, just cheaper.
  const Graph* graph = nullptr;
};

// Definition 2.6: the smallest scanned budget whose schedule cost equals
// `target_cost` (normally AlgorithmicLowerBound(graph)). Returns nullopt if
// no scanned budget achieves it.
std::optional<Weight> FindMinimumFastMemory(const CostFn& cost_fn,
                                            Weight target_cost,
                                            const MinMemoryOptions& options);

struct BudgetSweepOptions {
  // Worker threads; 0 selects DefaultSearchThreads(). cost_fn must be safe
  // to call concurrently when the resolved count exceeds 1.
  std::size_t threads = 0;
  // Polled between evaluations; budgets not yet evaluated when the token
  // fires come back as kInfiniteCost.
  const CancelToken* cancel = nullptr;
  // Optional band-tightening: budgets below MinValidBudget(*graph) come
  // back as kInfiniteCost without invoking cost_fn (by Prop 2.3 no valid
  // schedule exists there, and every scheduler's contract returns
  // kInfiniteCost for them anyway). Identical results, fewer probes.
  const Graph* graph = nullptr;
};

// Evaluates the Definition 2.5 MinimumSchedule target at every budget in
// the grid, fanning the per-budget evaluations across the pool (each entry
// is independent, so the result vector is identical at any thread count).
// The workhorse behind the bench sweeps and the --threads-sweep mode.
std::vector<Weight> EvaluateBudgets(const CostFn& cost_fn,
                                    const std::vector<Weight>& budgets,
                                    const BudgetSweepOptions& options = {});

}  // namespace wrbpg
