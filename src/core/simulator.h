// Reference simulator for the WRBPG: validates schedules and computes costs.
//
// Simulate() replays a move sequence from the starting condition (blue
// pebbles on all of A(G)) and enforces, per move:
//   * the move rules M1-M4 (Sec 2, Fig 1 label transitions),
//   * the weighted red pebble constraint sum_{v in R(C_i)} w_v <= B
//     (Definition 2.1) after every snapshot,
// and, at the end, the stopping condition (blue pebbles on all of Z(G)).
// The returned result carries the weighted schedule cost (Definition 2.2),
// the peak resident red weight, and move-type counts.
//
// Every scheduler in this repository is tested by passing its output through
// this simulator; it is the single source of truth for validity.
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/graph.h"
#include "core/schedule.h"
#include "core/types.h"

namespace wrbpg {

struct SimOptions {
  // Require all sinks blue at the end (the game's stopping condition).
  // Disabled for partial schedules (e.g. per-tile sub-schedules).
  bool require_stop_condition = true;
  // Extra pebbles present before the first move, for the Sec 4.1
  // memory-state semantics (sources always start blue regardless).
  std::vector<NodeId> initial_red = {};
  std::vector<NodeId> initial_blue = {};
  // Nodes that must hold red pebbles after the last move (reuse sets).
  std::vector<NodeId> required_red_at_end = {};
};

// Typed taxonomy of rule violations, one code per simulator failure mode.
// Machine-readable counterpart of SimResult::error; the repairer in
// src/robust/ dispatches on it, and tests pin it exactly.
enum class SimErrorCode : std::uint8_t {
  kNone = 0,                 // valid schedule
  kNodeOutOfRange,           // move names a node >= num_nodes()
  kLoadNoBlue,               // M1 with no blue pebble to copy from
  kLoadAlreadyRed,           // M1 onto a node already red
  kStoreNoRed,               // M2 with no red pebble to copy from
  kStoreAlreadyBlue,         // M2 onto a node already blue
  kComputeSource,            // M3 on a source (inputs use M1)
  kComputeAlreadyRed,        // M3 onto a node already red
  kComputeParentNotRed,      // M3 with some parent not red
  kDeleteNoRed,              // M4 with no red pebble to delete
  kBudgetExceeded,           // weighted red constraint violated (Def 2.1)
  kInitialRedOverBudget,     // SimOptions::initial_red alone exceeds budget
  kStopConditionUnmet,       // some sink never received a blue pebble
  kReuseConditionUnmet,      // required_red_at_end node not red at the end
};

// Every code, for exhaustive iteration in tests and tools. Must list each
// enumerator exactly once; the ToString round-trip test enforces it.
inline constexpr SimErrorCode kAllSimErrorCodes[] = {
    SimErrorCode::kNone,
    SimErrorCode::kNodeOutOfRange,
    SimErrorCode::kLoadNoBlue,
    SimErrorCode::kLoadAlreadyRed,
    SimErrorCode::kStoreNoRed,
    SimErrorCode::kStoreAlreadyBlue,
    SimErrorCode::kComputeSource,
    SimErrorCode::kComputeAlreadyRed,
    SimErrorCode::kComputeParentNotRed,
    SimErrorCode::kDeleteNoRed,
    SimErrorCode::kBudgetExceeded,
    SimErrorCode::kInitialRedOverBudget,
    SimErrorCode::kStopConditionUnmet,
    SimErrorCode::kReuseConditionUnmet,
};

// Short stable identifier, e.g. "load-no-blue" (for CLI and logs). The
// switch has no default case, so adding an enumerator without extending
// this mapping fails the -Werror=switch build rather than silently
// rendering as "unknown".
const char* ToString(SimErrorCode code);

// Inverse of ToString over the stable identifiers: "load-no-blue" ->
// kLoadNoBlue; nullopt for anything else. Lets CLI/JSON consumers parse
// error codes back without a second, drift-prone table.
std::optional<SimErrorCode> SimErrorCodeFromString(std::string_view name);

struct SimResult {
  bool valid = false;
  std::string error;            // human-readable reason when !valid
  std::size_t error_index = 0;  // move index of the first violation
  SimErrorCode code = SimErrorCode::kNone;  // typed reason when !valid
  // Node the violation is about: the move's node, the missing parent for
  // kComputeParentNotRed, or the unsatisfied sink/reuse node for the
  // end-condition codes. kInvalidNode when no single node applies.
  NodeId error_node = kInvalidNode;

  Weight cost = 0;             // Definition 2.2: sum of M1/M2 weights
  Weight peak_red_weight = 0;  // max over snapshots of total red weight
  Weight final_red_weight = 0;
  std::size_t loads = 0;     // M1 count
  std::size_t stores = 0;    // M2 count
  std::size_t computes = 0;  // M3 count
  std::size_t deletes = 0;   // M4 count
  bool stop_condition_met = false;
};

// Observer invoked after each successfully applied move; receives the move
// index, the move, and the total red weight of the resulting snapshot.
using SimObserver =
    std::function<void(std::size_t, const Move&, Weight red_weight)>;

SimResult Simulate(const Graph& graph, Weight budget, const Schedule& schedule,
                   const SimOptions& options = {},
                   const SimObserver& observer = nullptr);

}  // namespace wrbpg
