// Node-weighted computational DAG (CDAG) G = (V, E, w) of the WRBPG.
//
// Immutable after construction (build via GraphBuilder). Adjacency is stored
// in CSR form; parents(v) corresponds to the paper's H(v), sources() to
// A(G), and sinks() to Z(G).
#pragma once

#include <span>
#include <string>
#include <vector>

#include "core/types.h"

namespace wrbpg {

class GraphBuilder;

class Graph {
 public:
  Graph() = default;

  NodeId num_nodes() const noexcept {
    return static_cast<NodeId>(weights_.size());
  }
  std::size_t num_edges() const noexcept { return parent_data_.size(); }

  Weight weight(NodeId v) const { return weights_[v]; }
  const std::vector<Weight>& weights() const noexcept { return weights_; }

  // Immediate predecessors H(v) (empty for sources).
  std::span<const NodeId> parents(NodeId v) const {
    return {parent_data_.data() + parent_offsets_[v],
            parent_offsets_[v + 1] - parent_offsets_[v]};
  }
  // Immediate successors (empty for sinks).
  std::span<const NodeId> children(NodeId v) const {
    return {child_data_.data() + child_offsets_[v],
            child_offsets_[v + 1] - child_offsets_[v]};
  }

  std::size_t in_degree(NodeId v) const { return parents(v).size(); }
  std::size_t out_degree(NodeId v) const { return children(v).size(); }

  bool is_source(NodeId v) const { return in_degree(v) == 0; }
  bool is_sink(NodeId v) const { return out_degree(v) == 0; }

  // A(G): nodes with in-degree zero, ascending by id.
  const std::vector<NodeId>& sources() const noexcept { return sources_; }
  // Z(G): nodes with out-degree zero, ascending by id.
  const std::vector<NodeId>& sinks() const noexcept { return sinks_; }

  // A topological order of V (sources first). Stable across runs.
  const std::vector<NodeId>& topological_order() const noexcept {
    return topo_order_;
  }

  // Optional human-readable node name ("" when unnamed).
  const std::string& name(NodeId v) const { return names_[v]; }

  // Sum of node weights over all of V.
  Weight total_weight() const noexcept { return total_weight_; }

 private:
  friend class GraphBuilder;

  std::vector<Weight> weights_;
  std::vector<std::string> names_;
  std::vector<std::size_t> parent_offsets_;  // size num_nodes()+1
  std::vector<NodeId> parent_data_;
  std::vector<std::size_t> child_offsets_;  // size num_nodes()+1
  std::vector<NodeId> child_data_;
  std::vector<NodeId> sources_;
  std::vector<NodeId> sinks_;
  std::vector<NodeId> topo_order_;
  Weight total_weight_ = 0;
};

}  // namespace wrbpg
