// Structured sinks over the observability state (DESIGN.md §10).
//
// Two views of the same snapshot:
//   RenderReport()  — human-readable: the span tree with hit counts and
//                     total milliseconds, then counters and gauges.
//   ObsDocument()   — the stable wrbpg-obs-v1 JSON schema shared by the
//                     CLI's --metrics-json, the `profile` verb, and every
//                     BENCH_*.json artifact:
//
//   {
//     "schema":   "wrbpg-obs-v1",
//     "tool":     "<producer>",           // e.g. "profile", "engine-compare"
//     "counters": { "<name>": <uint>, ... },
//     "gauges":   { "<name>": <uint>, ... },
//     "spans":    { "name": "root", "count": <uint>, "total_ms": <double>,
//                   "children": [ <span>, ... ] },
//     ...tool-specific keys (e.g. "rows") appended by the producer
//   }
//
// Producers append their own keys (tables, verdicts) after the common
// prefix, so one validator covers every artifact: the CI profile-smoke job
// checks schema/tool/counters/gauges/spans on each emitted file.
#pragma once

#include <string>
#include <string_view>

#include "obs/json.h"
#include "obs/span.h"

namespace wrbpg::obs {

inline constexpr std::string_view kObsSchema = "wrbpg-obs-v1";

// Human-readable tree report of the current spans + metrics snapshot.
std::string RenderReport();

// {"counters": {...}, "gauges": {...}} from the current snapshot.
Json MetricsJson();

// The span tree as a Json object (recursively: name/count/total_ms/children).
Json SpanJson(const SpanNode& node);

// Full wrbpg-obs-v1 document over the current snapshot; callers append
// tool-specific keys before dumping.
Json ObsDocument(std::string_view tool);

// Dumps `doc` to `path` (2-space indent). Returns false and fills *error
// (when non-null) if the file cannot be written.
bool WriteJsonFile(const std::string& path, const Json& doc,
                   std::string* error = nullptr);

// Clears counters, gauges, and spans in one call (test/CLI-run isolation).
void ResetAll();

}  // namespace wrbpg::obs
