// Minimal ordered JSON document builder for the observability sinks.
//
// Just enough JSON to emit the stable wrbpg-obs-v1 schema: objects keep
// insertion order (so every BENCH_*.json and --metrics-json file is
// byte-stable for identical inputs), doubles serialize in shortest
// round-trip form (std::to_chars), and strings are escaped per RFC 8259.
// Construction is by value — build leaves, Set/Push them into containers:
//
//   Json doc = Json::Object();
//   doc.Set("schema", "wrbpg-obs-v1");
//   Json rows = Json::Array();
//   rows.Push(Json::Object().Set("cost", std::int64_t{42}));
//   doc.Set("rows", std::move(rows));
//   out << doc.Dump();
//
// This is a writer, not a parser; consumers are pandas/jq/python in CI.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <variant>
#include <vector>

namespace wrbpg::obs {

class Json {
 public:
  Json() : value_(nullptr) {}                       // null
  Json(bool b) : value_(b) {}                       // NOLINT(google-explicit-constructor)
  Json(int v) : value_(std::int64_t{v}) {}          // NOLINT(google-explicit-constructor)
  Json(std::int64_t v) : value_(v) {}               // NOLINT(google-explicit-constructor)
  Json(std::uint64_t v) : value_(v) {}              // NOLINT(google-explicit-constructor)
  Json(double v) : value_(v) {}                     // NOLINT(google-explicit-constructor)
  Json(std::string s) : value_(std::move(s)) {}     // NOLINT(google-explicit-constructor)
  Json(std::string_view s) : value_(std::string(s)) {}  // NOLINT(google-explicit-constructor)
  Json(const char* s) : value_(std::string(s)) {}   // NOLINT(google-explicit-constructor)

  static Json Object() {
    Json j;
    j.value_ = Members{};
    return j;
  }
  static Json Array() {
    Json j;
    j.value_ = Elements{};
    return j;
  }

  // Appends (or overwrites) a key in an object. The receiver must be an
  // object; calling on any other kind is a programming error (asserted).
  Json& Set(std::string_view key, Json value);

  // Appends an element to an array (same contract).
  Json& Push(Json value);

  bool is_object() const { return std::holds_alternative<Members>(value_); }
  bool is_array() const { return std::holds_alternative<Elements>(value_); }

  // Serializes with `indent` spaces per level; indent 0 emits one line.
  std::string Dump(int indent = 2) const;

  // Escapes a string per RFC 8259 (without the surrounding quotes).
  static std::string Escape(std::string_view s);

 private:
  using Members = std::vector<std::pair<std::string, Json>>;
  using Elements = std::vector<Json>;

  void DumpTo(std::string& out, int indent, int depth) const;

  std::variant<std::nullptr_t, bool, std::int64_t, std::uint64_t, double,
               std::string, Elements, Members>
      value_;
};

}  // namespace wrbpg::obs
