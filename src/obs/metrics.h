// Process-wide counter/gauge registry — the metrics half of the
// observability layer (DESIGN.md §10).
//
// Writes go to lock-free per-thread shards (one relaxed atomic add on a
// cache line the writing thread owns), so instrumented hot paths stay hot;
// reads fold every live shard plus the retired totals of exited threads
// into one snapshot. Two metric kinds:
//
//   counter — monotone event count, folded by SUM across threads
//             (e.g. "search.expanded", "sim.moves").
//   gauge   — high-water mark, folded by MAX across threads
//             (e.g. "search.max_frontier", "sim.peak_red_weight").
//
// Determinism contract: metrics are write-only from the algorithms' point
// of view — no scheduling decision ever reads a metric, so enabling or
// disabling collection cannot change any schedule (pinned by
// metrics_differential_test). Collection defaults to enabled; SetEnabled
// gates every Add/GaugeMax behind one relaxed atomic load for callers who
// want the last nanoseconds back.
//
// Registration is bounded (kMaxMetrics names per process); past the limit
// Register* returns kInvalidMetric and writes to it are dropped. Names are
// stable dotted paths ("layer.event"); registering a name twice returns
// the same id, so `static const Counter` handles at instrumentation sites
// are cheap and idempotent.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace wrbpg::obs {

using MetricId = std::uint32_t;

inline constexpr MetricId kInvalidMetric = 0xffffffffu;

// Upper bound on distinct metric names per process; each live thread pays
// one cell (8 bytes, padded block) per slot, so the cap keeps shards small.
inline constexpr std::size_t kMaxMetrics = 512;

enum class MetricKind : std::uint8_t { kCounter, kGauge };

// Idempotent: the same name always maps to the same id (the kind of the
// first registration wins). Returns kInvalidMetric when the registry is
// full or the name is empty.
MetricId RegisterCounter(std::string_view name);
MetricId RegisterGauge(std::string_view name);

// Hot-path writes. No-ops when collection is disabled or id is invalid.
void Add(MetricId id, std::uint64_t delta);        // counter: +
void GaugeMax(MetricId id, std::uint64_t value);   // gauge: max

// Global collection switch (default on). Purely observational: flipping it
// changes what the registry records, never what any algorithm computes.
bool Enabled();
void SetEnabled(bool enabled);

struct MetricValue {
  std::string name;
  MetricKind kind = MetricKind::kCounter;
  std::uint64_t value = 0;
};

// Folded view of every registered metric, sorted by name. Safe to call
// concurrently with writers; in-flight increments may or may not be seen
// (each shard cell is read atomically, so values are never torn).
std::vector<MetricValue> SnapshotMetrics();

// Folded value of one metric by name; 0 when the name was never registered.
std::uint64_t ReadMetric(std::string_view name);

// Zeroes every shard and the retired totals. Intended for test isolation
// and the CLI's per-run reports; callers must ensure no writer is racing
// (a racing Add may survive the reset).
void ResetMetrics();

// RAII-free convenience handles: resolve the id once (function-local
// `static const` at the instrumentation site) and write through it.
class Counter {
 public:
  explicit Counter(std::string_view name) : id_(RegisterCounter(name)) {}
  void Add(std::uint64_t delta = 1) const { obs::Add(id_, delta); }
  MetricId id() const { return id_; }

 private:
  MetricId id_;
};

class Gauge {
 public:
  explicit Gauge(std::string_view name) : id_(RegisterGauge(name)) {}
  void Max(std::uint64_t value) const { GaugeMax(id_, value); }
  MetricId id() const { return id_; }

 private:
  MetricId id_;
};

}  // namespace wrbpg::obs
