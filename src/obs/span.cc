#include "obs/span.h"

#include <algorithm>
#include <memory>
#include <mutex>

#include "obs/metrics.h"

namespace wrbpg::obs {
namespace {

using Clock = std::chrono::steady_clock;

// One thread's span tree: an arena of nodes with parent/child links and a
// cursor at the innermost open span. Node indices are stable for the
// thread's lifetime (ResetSpans zeroes statistics but keeps the arena, so
// a span open across a reset still pops safely).
struct Tree {
  struct Node {
    std::string name;
    std::uint32_t parent = 0;
    std::uint64_t count = 0;
    double total_ms = 0;
    std::vector<std::uint32_t> children;
  };

  std::mutex mu;
  std::vector<Node> nodes;
  std::uint32_t current = 0;

  Tree() { nodes.emplace_back(); }  // [0] = the thread's root

  // Child of `parent` named `name`, created on first use.
  std::uint32_t ChildLocked(std::uint32_t parent, std::string_view name) {
    for (const std::uint32_t c : nodes[parent].children) {
      if (nodes[c].name == name) return c;
    }
    const std::uint32_t id = static_cast<std::uint32_t>(nodes.size());
    Node node;
    node.name = std::string(name);
    node.parent = parent;
    nodes.push_back(std::move(node));
    nodes[parent].children.push_back(id);
    return id;
  }
};

void MergeNode(SpanNode& dst, const SpanNode& src) {
  dst.count += src.count;
  dst.total_ms += src.total_ms;
  for (const SpanNode& child : src.children) {
    auto it = std::find_if(
        dst.children.begin(), dst.children.end(),
        [&](const SpanNode& d) { return d.name == child.name; });
    if (it == dst.children.end()) {
      dst.children.push_back(child);
    } else {
      MergeNode(*it, child);
    }
  }
}

void SortChildren(SpanNode& node) {
  std::sort(node.children.begin(), node.children.end(),
            [](const SpanNode& a, const SpanNode& b) {
              return a.name < b.name;
            });
  for (SpanNode& child : node.children) SortChildren(child);
}

// Converts a tree node to the public form, pruning subtrees with no
// recorded hits (left behind by ResetSpans or spans still open).
SpanNode Export(const Tree& tree, std::uint32_t index) {
  const Tree::Node& n = tree.nodes[index];
  SpanNode out;
  out.name = index == 0 ? "root" : n.name;
  out.count = n.count;
  out.total_ms = n.total_ms;
  for (const std::uint32_t c : n.children) {
    SpanNode child = Export(tree, c);
    if (child.count > 0 || !child.children.empty()) {
      out.children.push_back(std::move(child));
    }
  }
  return out;
}

class SpanRegistry {
 public:
  static SpanRegistry& Instance() {
    static SpanRegistry* instance = new SpanRegistry();  // leaked; see
    return *instance;  // Registry in metrics.cc for the rationale
  }

  void Attach(const std::shared_ptr<Tree>& tree) {
    std::lock_guard<std::mutex> lock(mu_);
    trees_.push_back(tree);
  }

  void Detach(const std::shared_ptr<Tree>& tree) {
    std::lock_guard<std::mutex> lock(mu_);
    {
      std::lock_guard<std::mutex> tree_lock(tree->mu);
      MergeNode(retired_, Export(*tree, 0));
    }
    trees_.erase(std::remove(trees_.begin(), trees_.end(), tree),
                 trees_.end());
  }

  SpanNode Snapshot() {
    std::lock_guard<std::mutex> lock(mu_);
    SpanNode out = retired_;
    out.name = "root";
    for (const auto& tree : trees_) {
      std::lock_guard<std::mutex> tree_lock(tree->mu);
      MergeNode(out, Export(*tree, 0));
    }
    SortChildren(out);
    return out;
  }

  void Reset() {
    std::lock_guard<std::mutex> lock(mu_);
    retired_ = SpanNode{};
    retired_.name = "root";
    for (const auto& tree : trees_) {
      std::lock_guard<std::mutex> tree_lock(tree->mu);
      for (Tree::Node& node : tree->nodes) {
        node.count = 0;
        node.total_ms = 0;
      }
    }
  }

 private:
  SpanRegistry() { retired_.name = "root"; }

  std::mutex mu_;
  std::vector<std::shared_ptr<Tree>> trees_;
  SpanNode retired_;
};

struct TreeHandle {
  std::shared_ptr<Tree> tree = std::make_shared<Tree>();
  TreeHandle() { SpanRegistry::Instance().Attach(tree); }
  ~TreeHandle() { SpanRegistry::Instance().Detach(tree); }
};

Tree& LocalTree() {
  thread_local TreeHandle handle;
  return *handle.tree;
}

}  // namespace

ScopedSpan::ScopedSpan(std::string_view name) {
  if (!Enabled() || name.empty()) return;
  Tree& tree = LocalTree();
  {
    std::lock_guard<std::mutex> lock(tree.mu);
    node_ = tree.ChildLocked(tree.current, name);
    tree.current = node_;
  }
  active_ = true;
  start_ = Clock::now();
}

ScopedSpan::~ScopedSpan() {
  if (!active_) return;
  const double elapsed_ms =
      std::chrono::duration<double, std::milli>(Clock::now() - start_)
          .count();
  Tree& tree = LocalTree();
  std::lock_guard<std::mutex> lock(tree.mu);
  Tree::Node& node = tree.nodes[node_];
  node.count += 1;
  node.total_ms += elapsed_ms;
  tree.current = node.parent;
}

void RecordSpan(std::string_view name, double elapsed_ms) {
  if (!Enabled() || name.empty()) return;
  Tree& tree = LocalTree();
  std::lock_guard<std::mutex> lock(tree.mu);
  const std::uint32_t id = tree.ChildLocked(tree.current, name);
  Tree::Node& node = tree.nodes[id];
  node.count += 1;
  node.total_ms += elapsed_ms;
}

SpanNode SnapshotSpans() { return SpanRegistry::Instance().Snapshot(); }

void ResetSpans() { SpanRegistry::Instance().Reset(); }

}  // namespace wrbpg::obs
