#include "obs/json.h"

#include <cassert>
#include <charconv>
#include <cmath>

namespace wrbpg::obs {
namespace {

void AppendDouble(std::string& out, double v) {
  if (!std::isfinite(v)) {
    // JSON has no Infinity/NaN; null is the conventional stand-in.
    out += "null";
    return;
  }
  char buf[32];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  assert(ec == std::errc());
  (void)ec;
  out.append(buf, ptr);
  // to_chars emits integral doubles without a decimal point; keep the
  // type visible to schema validators ("1" -> "1.0", but not "1e+30").
  std::string_view written(buf, static_cast<std::size_t>(ptr - buf));
  if (written.find_first_of(".eE") == std::string_view::npos) {
    out += ".0";
  }
}

void Indent(std::string& out, int indent, int depth) {
  if (indent <= 0) return;
  out.push_back('\n');
  out.append(static_cast<std::size_t>(indent) * static_cast<std::size_t>(depth),
             ' ');
}

}  // namespace

std::string Json::Escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          constexpr char kHex[] = "0123456789abcdef";
          out += "\\u00";
          out.push_back(kHex[(static_cast<unsigned char>(c) >> 4) & 0xf]);
          out.push_back(kHex[static_cast<unsigned char>(c) & 0xf]);
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

Json& Json::Set(std::string_view key, Json value) {
  assert(is_object());
  Members& members = std::get<Members>(value_);
  for (auto& [k, v] : members) {
    if (k == key) {
      v = std::move(value);
      return *this;
    }
  }
  members.emplace_back(std::string(key), std::move(value));
  return *this;
}

Json& Json::Push(Json value) {
  assert(is_array());
  std::get<Elements>(value_).push_back(std::move(value));
  return *this;
}

void Json::DumpTo(std::string& out, int indent, int depth) const {
  if (std::holds_alternative<std::nullptr_t>(value_)) {
    out += "null";
  } else if (const auto* b = std::get_if<bool>(&value_)) {
    out += *b ? "true" : "false";
  } else if (const auto* sv = std::get_if<std::int64_t>(&value_)) {
    out += std::to_string(*sv);
  } else if (const auto* u = std::get_if<std::uint64_t>(&value_)) {
    out += std::to_string(*u);
  } else if (const auto* d = std::get_if<double>(&value_)) {
    AppendDouble(out, *d);
  } else if (const auto* s = std::get_if<std::string>(&value_)) {
    out.push_back('"');
    out += Escape(*s);
    out.push_back('"');
  } else if (const auto* arr = std::get_if<Elements>(&value_)) {
    if (arr->empty()) {
      out += "[]";
      return;
    }
    out.push_back('[');
    for (std::size_t i = 0; i < arr->size(); ++i) {
      if (i > 0) out.push_back(',');
      Indent(out, indent, depth + 1);
      (*arr)[i].DumpTo(out, indent, depth + 1);
    }
    Indent(out, indent, depth);
    out.push_back(']');
  } else {
    const Members& members = std::get<Members>(value_);
    if (members.empty()) {
      out += "{}";
      return;
    }
    out.push_back('{');
    for (std::size_t i = 0; i < members.size(); ++i) {
      if (i > 0) out.push_back(',');
      Indent(out, indent, depth + 1);
      out.push_back('"');
      out += Escape(members[i].first);
      out += indent > 0 ? "\": " : "\":";
      members[i].second.DumpTo(out, indent, depth + 1);
    }
    Indent(out, indent, depth);
    out.push_back('}');
  }
}

std::string Json::Dump(int indent) const {
  std::string out;
  DumpTo(out, indent, 0);
  out.push_back('\n');
  return out;
}

}  // namespace wrbpg::obs
