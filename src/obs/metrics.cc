#include "obs/metrics.h"

#include <algorithm>
#include <array>
#include <atomic>
#include <memory>
#include <mutex>
#include <unordered_map>

namespace wrbpg::obs {
namespace {

std::atomic<bool> g_enabled{true};

// One thread's cells. Allocated lazily on the thread's first write and
// owned jointly by the thread (thread_local handle) and the registry (so a
// snapshot can outlive the thread); exited threads fold into `retired_`.
struct Shard {
  std::array<std::atomic<std::uint64_t>, kMaxMetrics> cells{};
};

class Registry {
 public:
  static Registry& Instance() {
    // Leaked singleton: shards unregister from thread destructors, which
    // can run after static destructors on the main thread.
    static Registry* instance = new Registry();
    return *instance;
  }

  MetricId Register(std::string_view name, MetricKind kind) {
    if (name.empty()) return kInvalidMetric;
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = ids_.find(std::string(name));
    if (it != ids_.end()) return it->second;
    if (names_.size() >= kMaxMetrics) return kInvalidMetric;
    const MetricId id = static_cast<MetricId>(names_.size());
    names_.emplace_back(name);
    kinds_.push_back(kind);
    retired_[id].store(0, std::memory_order_relaxed);
    ids_.emplace(names_.back(), id);
    return id;
  }

  void Attach(const std::shared_ptr<Shard>& shard) {
    std::lock_guard<std::mutex> lock(mu_);
    shards_.push_back(shard);
  }

  // Folds a dying thread's cells into the retired totals and drops the
  // registry's reference to its shard.
  void Detach(const std::shared_ptr<Shard>& shard) {
    std::lock_guard<std::mutex> lock(mu_);
    for (std::size_t id = 0; id < names_.size(); ++id) {
      const std::uint64_t v = shard->cells[id].load(std::memory_order_relaxed);
      if (v == 0) continue;
      Fold(retired_[id], v, kinds_[id]);
    }
    shards_.erase(std::remove(shards_.begin(), shards_.end(), shard),
                  shards_.end());
  }

  std::vector<MetricValue> Snapshot() {
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<MetricValue> out(names_.size());
    for (std::size_t id = 0; id < names_.size(); ++id) {
      out[id].name = names_[id];
      out[id].kind = kinds_[id];
      out[id].value = FoldedLocked(static_cast<MetricId>(id));
    }
    std::sort(out.begin(), out.end(),
              [](const MetricValue& a, const MetricValue& b) {
                return a.name < b.name;
              });
    return out;
  }

  std::uint64_t Read(std::string_view name) {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = ids_.find(std::string(name));
    if (it == ids_.end()) return 0;
    return FoldedLocked(it->second);
  }

  void Reset() {
    std::lock_guard<std::mutex> lock(mu_);
    for (std::size_t id = 0; id < names_.size(); ++id) {
      retired_[id].store(0, std::memory_order_relaxed);
      for (const auto& shard : shards_) {
        shard->cells[id].store(0, std::memory_order_relaxed);
      }
    }
  }

 private:
  static void Fold(std::atomic<std::uint64_t>& into, std::uint64_t v,
                   MetricKind kind) {
    if (kind == MetricKind::kCounter) {
      into.fetch_add(v, std::memory_order_relaxed);
    } else {
      std::uint64_t seen = into.load(std::memory_order_relaxed);
      while (v > seen && !into.compare_exchange_weak(
                             seen, v, std::memory_order_relaxed)) {
      }
    }
  }

  std::uint64_t FoldedLocked(MetricId id) const {
    std::uint64_t acc = retired_[id].load(std::memory_order_relaxed);
    for (const auto& shard : shards_) {
      const std::uint64_t v = shard->cells[id].load(std::memory_order_relaxed);
      if (kinds_[id] == MetricKind::kCounter) {
        acc += v;
      } else {
        acc = std::max(acc, v);
      }
    }
    return acc;
  }

  mutable std::mutex mu_;
  std::vector<std::string> names_;
  std::vector<MetricKind> kinds_;
  std::unordered_map<std::string, MetricId> ids_;
  std::vector<std::shared_ptr<Shard>> shards_;
  std::array<std::atomic<std::uint64_t>, kMaxMetrics> retired_{};
};

// Thread-local shard handle: registers on first use, folds into the
// retired totals when the thread exits.
struct ShardHandle {
  std::shared_ptr<Shard> shard = std::make_shared<Shard>();
  ShardHandle() { Registry::Instance().Attach(shard); }
  ~ShardHandle() { Registry::Instance().Detach(shard); }
};

Shard& LocalShard() {
  thread_local ShardHandle handle;
  return *handle.shard;
}

}  // namespace

MetricId RegisterCounter(std::string_view name) {
  return Registry::Instance().Register(name, MetricKind::kCounter);
}

MetricId RegisterGauge(std::string_view name) {
  return Registry::Instance().Register(name, MetricKind::kGauge);
}

void Add(MetricId id, std::uint64_t delta) {
  if (id >= kMaxMetrics || delta == 0 ||
      !g_enabled.load(std::memory_order_relaxed)) {
    return;
  }
  LocalShard().cells[id].fetch_add(delta, std::memory_order_relaxed);
}

void GaugeMax(MetricId id, std::uint64_t value) {
  if (id >= kMaxMetrics || !g_enabled.load(std::memory_order_relaxed)) {
    return;
  }
  // Only the owning thread writes its cell, so load-compare-store suffices.
  std::atomic<std::uint64_t>& cell = LocalShard().cells[id];
  if (value > cell.load(std::memory_order_relaxed)) {
    cell.store(value, std::memory_order_relaxed);
  }
}

bool Enabled() { return g_enabled.load(std::memory_order_relaxed); }

void SetEnabled(bool enabled) {
  g_enabled.store(enabled, std::memory_order_relaxed);
}

std::vector<MetricValue> SnapshotMetrics() {
  return Registry::Instance().Snapshot();
}

std::uint64_t ReadMetric(std::string_view name) {
  return Registry::Instance().Read(name);
}

void ResetMetrics() { Registry::Instance().Reset(); }

}  // namespace wrbpg::obs
