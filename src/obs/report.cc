#include "obs/report.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "obs/metrics.h"

namespace wrbpg::obs {
namespace {

std::string FormatMs(double ms) {
  char buf[32];
  const int written = std::snprintf(buf, sizeof(buf), "%.3f", ms);
  return std::string(buf, static_cast<std::size_t>(written));
}

void RenderSpan(std::ostringstream& out, const SpanNode& node, int depth) {
  for (int i = 0; i < depth; ++i) out << "  ";
  out << node.name << ": " << FormatMs(node.total_ms) << " ms";
  if (node.count != 1) out << " (" << node.count << " calls)";
  out << "\n";
  for (const SpanNode& child : node.children) {
    RenderSpan(out, child, depth + 1);
  }
}

}  // namespace

std::string RenderReport() {
  std::ostringstream out;
  const SpanNode spans = SnapshotSpans();
  out << "spans:\n";
  if (spans.children.empty()) {
    out << "  (none recorded)\n";
  } else {
    for (const SpanNode& child : spans.children) {
      RenderSpan(out, child, 1);
    }
  }
  const auto metrics = SnapshotMetrics();
  bool any_counter = false;
  bool any_gauge = false;
  for (const MetricValue& m : metrics) {
    any_counter |= m.kind == MetricKind::kCounter;
    any_gauge |= m.kind == MetricKind::kGauge;
  }
  out << "counters:\n";
  if (!any_counter) out << "  (none)\n";
  for (const MetricValue& m : metrics) {
    if (m.kind == MetricKind::kCounter) {
      out << "  " << m.name << " = " << m.value << "\n";
    }
  }
  out << "gauges:\n";
  if (!any_gauge) out << "  (none)\n";
  for (const MetricValue& m : metrics) {
    if (m.kind == MetricKind::kGauge) {
      out << "  " << m.name << " = " << m.value << "\n";
    }
  }
  return out.str();
}

Json MetricsJson() {
  Json counters = Json::Object();
  Json gauges = Json::Object();
  for (const MetricValue& m : SnapshotMetrics()) {
    (m.kind == MetricKind::kCounter ? counters : gauges)
        .Set(m.name, m.value);
  }
  Json out = Json::Object();
  out.Set("counters", std::move(counters));
  out.Set("gauges", std::move(gauges));
  return out;
}

Json SpanJson(const SpanNode& node) {
  Json out = Json::Object();
  out.Set("name", node.name);
  out.Set("count", node.count);
  out.Set("total_ms", node.total_ms);
  Json children = Json::Array();
  for (const SpanNode& child : node.children) {
    children.Push(SpanJson(child));
  }
  out.Set("children", std::move(children));
  return out;
}

Json ObsDocument(std::string_view tool) {
  Json doc = Json::Object();
  doc.Set("schema", kObsSchema);
  doc.Set("tool", tool);
  Json counters = Json::Object();
  Json gauges = Json::Object();
  for (const MetricValue& m : SnapshotMetrics()) {
    (m.kind == MetricKind::kCounter ? counters : gauges)
        .Set(m.name, m.value);
  }
  doc.Set("counters", std::move(counters));
  doc.Set("gauges", std::move(gauges));
  doc.Set("spans", SpanJson(SnapshotSpans()));
  return doc;
}

bool WriteJsonFile(const std::string& path, const Json& doc,
                   std::string* error) {
  std::ofstream out(path);
  if (!out) {
    if (error != nullptr) *error = "cannot open '" + path + "' for writing";
    return false;
  }
  out << doc.Dump();
  if (!out) {
    if (error != nullptr) *error = "write to '" + path + "' failed";
    return false;
  }
  return true;
}

void ResetAll() {
  ResetMetrics();
  ResetSpans();
}

}  // namespace wrbpg::obs
