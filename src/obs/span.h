// Hierarchical timing spans — the tracing half of the observability layer
// (DESIGN.md §10).
//
// A ScopedSpan brackets a region with monotonic-clock timestamps and files
// the elapsed time under the thread's current span path, so nested spans
// aggregate into a tree: one node per (parent-path, name) with a hit count
// and total milliseconds. Each thread owns its tree (a pool worker's spans
// root at that worker's top level); SnapshotSpans() merges every thread's
// tree — live and exited — by name into one report.
//
// Costs: one steady_clock read plus one short thread-local mutex
// lock/unlock at each end of the span (the mutex only contends with a
// concurrent snapshot), so spans belong at call boundaries — a search run,
// a chain stage, a simulator replay — not inside per-move loops.
//
// Like the metrics registry, spans are write-only for the algorithms:
// timings are recorded, never read back, so collection cannot perturb any
// schedule. SetEnabled(false) (obs/metrics.h) disables recording; a span
// opened while disabled stays inert even if collection is re-enabled
// before it closes.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace wrbpg::obs {

// Aggregated span statistics, merged across threads. The root is a
// synthetic node (name "root", count 0); children are sorted by name so
// reports and JSON are byte-stable for a given set of recordings.
struct SpanNode {
  std::string name;
  std::uint64_t count = 0;
  double total_ms = 0;
  std::vector<SpanNode> children;
};

class ScopedSpan {
 public:
  explicit ScopedSpan(std::string_view name);
  ~ScopedSpan();

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  std::chrono::steady_clock::time_point start_;
  std::uint32_t node_ = 0;
  bool active_ = false;
};

// Files an externally-timed interval as a completed child of the calling
// thread's current span (count +1, total_ms += elapsed) — for timings that
// already exist (e.g. the robust chain's per-stage elapsed_ms, measured on
// pool threads but reported under the chain's own span).
void RecordSpan(std::string_view name, double elapsed_ms);

// Merged span tree over all threads. Safe to call concurrently with
// recording; spans still open are not included.
SpanNode SnapshotSpans();

// Clears every thread's tree and the retired accumulations. Same caveats
// as ResetMetrics: callers must ensure no span is being recorded.
void ResetSpans();

}  // namespace wrbpg::obs
