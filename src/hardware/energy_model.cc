#include "hardware/energy_model.h"

#include <algorithm>

namespace wrbpg {
namespace {

// Accesses per second at peak bandwidth (word-granular transfers).
double AccessRatePerSecond(const SramMacro& macro, double bw_gbps) {
  const double bytes_per_word = static_cast<double>(macro.word_bits) / 8.0;
  return bw_gbps * 1e9 / bytes_per_word;
}

// A macro that was never synthesized (word_bits or bandwidth zero) has no
// defined access rate; the energy accessors return 0 instead of dividing
// by zero — the explorer rejects such points before pricing, this is the
// last line of defense.
bool Degenerate(const SramMacro& macro) {
  return macro.word_bits <= 0 || macro.read_bw_gbps <= 0 ||
         macro.write_bw_gbps <= 0;
}

}  // namespace

double ReadEnergyPerWordNj(const SramMacro& macro) {
  if (Degenerate(macro)) return 0;
  // P[mW] / rate[1/s] = energy per access in microjoules * 1e-3 -> nJ.
  return macro.read_power_mw * 1e-3 /
         AccessRatePerSecond(macro, macro.read_bw_gbps) * 1e9;
}

double WriteEnergyPerWordNj(const SramMacro& macro) {
  if (Degenerate(macro)) return 0;
  return macro.write_power_mw * 1e-3 /
         AccessRatePerSecond(macro, macro.write_bw_gbps) * 1e9;
}

EnergyReport EstimateScheduleEnergy(const SramMacro& macro,
                                    Weight bits_loaded, Weight bits_stored,
                                    double duty_cycle) {
  EnergyReport report;
  if (Degenerate(macro)) return report;
  // Sub-unit duty cycles would mean running faster than the
  // traffic-limited minimum; clamp instead of asserting so a malformed
  // sweep parameter degrades to the memory-bound estimate.
  duty_cycle = std::max(duty_cycle, 1.0);
  const double reads =
      static_cast<double>(std::max<Weight>(bits_loaded, 0)) /
      static_cast<double>(macro.word_bits);
  const double writes =
      static_cast<double>(std::max<Weight>(bits_stored, 0)) /
      static_cast<double>(macro.word_bits);

  report.read_energy_nj = reads * ReadEnergyPerWordNj(macro);
  report.write_energy_nj = writes * WriteEnergyPerWordNj(macro);

  const double traffic_seconds =
      reads / AccessRatePerSecond(macro, macro.read_bw_gbps) +
      writes / AccessRatePerSecond(macro, macro.write_bw_gbps);
  const double window_seconds = traffic_seconds * duty_cycle;
  report.execution_time_us = window_seconds * 1e6;
  report.static_energy_nj = macro.leakage_mw * 1e-3 * window_seconds * 1e9;

  report.total_energy_nj = report.read_energy_nj + report.write_energy_nj +
                           report.static_energy_nj;
  report.average_power_mw =
      window_seconds > 0
          ? report.total_energy_nj * 1e-9 / window_seconds * 1e3
          : 0.0;
  return report;
}

}  // namespace wrbpg
