#include "hardware/energy_model.h"

#include <cassert>

namespace wrbpg {
namespace {

// Accesses per second at peak bandwidth (word-granular transfers).
double AccessRatePerSecond(const SramMacro& macro, double bw_gbps) {
  const double bytes_per_word = static_cast<double>(macro.word_bits) / 8.0;
  return bw_gbps * 1e9 / bytes_per_word;
}

}  // namespace

double ReadEnergyPerWordNj(const SramMacro& macro) {
  // P[mW] / rate[1/s] = energy per access in microjoules * 1e-3 -> nJ.
  return macro.read_power_mw * 1e-3 /
         AccessRatePerSecond(macro, macro.read_bw_gbps) * 1e9;
}

double WriteEnergyPerWordNj(const SramMacro& macro) {
  return macro.write_power_mw * 1e-3 /
         AccessRatePerSecond(macro, macro.write_bw_gbps) * 1e9;
}

EnergyReport EstimateScheduleEnergy(const SramMacro& macro,
                                    Weight bits_loaded, Weight bits_stored,
                                    double duty_cycle) {
  assert(duty_cycle >= 1.0);
  EnergyReport report;
  const double reads =
      static_cast<double>(bits_loaded) / static_cast<double>(macro.word_bits);
  const double writes =
      static_cast<double>(bits_stored) / static_cast<double>(macro.word_bits);

  report.read_energy_nj = reads * ReadEnergyPerWordNj(macro);
  report.write_energy_nj = writes * WriteEnergyPerWordNj(macro);

  const double traffic_seconds =
      reads / AccessRatePerSecond(macro, macro.read_bw_gbps) +
      writes / AccessRatePerSecond(macro, macro.write_bw_gbps);
  const double window_seconds = traffic_seconds * duty_cycle;
  report.execution_time_us = window_seconds * 1e6;
  report.static_energy_nj = macro.leakage_mw * 1e-3 * window_seconds * 1e9;

  report.total_energy_nj = report.read_energy_nj + report.write_energy_nj +
                           report.static_energy_nj;
  report.average_power_mw =
      window_seconds > 0
          ? report.total_energy_nj * 1e-9 / window_seconds * 1e3
          : 0.0;
  return report;
}

}  // namespace wrbpg
