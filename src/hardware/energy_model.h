// Energy model tying WRBPG schedule costs to the SRAM macro — the quantity
// the BCI domain actually optimizes (Sec 1: milliwatt budgets, thermal
// safety).
//
// Per-access dynamic energy is derived from the macro's dynamic power at
// its peak access rate (E = P / rate); static energy integrates leakage
// over the workload's execution window. The schedule's M1/M2 traffic (in
// words of the macro's word size) provides the access counts.
#pragma once

#include "core/types.h"
#include "hardware/sram_model.h"

namespace wrbpg {

struct EnergyReport {
  double read_energy_nj = 0;     // dynamic energy of all M1 transfers
  double write_energy_nj = 0;    // dynamic energy of all M2 transfers
  double static_energy_nj = 0;   // leakage over the execution window
  double total_energy_nj = 0;
  double execution_time_us = 0;  // traffic-limited lower bound
  double average_power_mw = 0;
};

// Per-word access energies implied by the macro (nanojoules).
double ReadEnergyPerWordNj(const SramMacro& macro);
double WriteEnergyPerWordNj(const SramMacro& macro);

// Energy of a schedule that loads `bits_loaded` and stores `bits_stored`
// through `macro`. `duty_cycle` stretches the execution window relative to
// the traffic-limited minimum (1.0 = memory-bound back-to-back accesses;
// BCI pipelines idle between windows, increasing static share).
EnergyReport EstimateScheduleEnergy(const SramMacro& macro,
                                    Weight bits_loaded, Weight bits_stored,
                                    double duty_cycle = 1.0);

}  // namespace wrbpg
