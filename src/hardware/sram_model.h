// Analytic SRAM macro model — the physical-synthesis substrate of Sec 5.3.
//
// SUBSTITUTION (see DESIGN.md §3): the paper synthesizes SRAM arrays with
// AMC (an asynchronous memory compiler) in the TSMC 65 nm PDK — proprietary
// EDA we cannot run. This module models the same design points analytically:
// a banked 6T SRAM macro with a bit-cell array plus row/column periphery.
//
//   organization  cols picked near sqrt(capacity) as word-width multiples;
//                 arrays taller than kMaxRowsPerBank rows split into banks.
//   area (λ²)     kBitcellArea·bits + kRowPeriph·rows + kColPeriph·cols
//                 + kBankOverhead·banks + kGlobalOverhead.
//   leakage (mW)  kLeakPerBit·bits + per-row/col periphery + constant —
//                 dominated by the bit count, which is what makes the
//                 paper's capacity reductions translate to static power.
//   read/write    dynamic power grows with the active array size; peak
//                 bandwidth is nearly capacity-independent because AMC's
//                 gate sizing is fixed (Sec 5.3) — modeled as a pipelined
//                 16-byte access window whose cycle time grows only weakly
//                 with rows/cols.
//
// Constants are calibrated so the Fig. 7 magnitudes (tens of kλ², tens of
// mW, tens of GB/s) are matched; the claims reproduced are the *relative*
// reductions, which depend only on the monotone capacity → area/power maps.
#pragma once

#include <cstdint>
#include <string>

#include "core/types.h"

namespace wrbpg {

struct SramMacro {
  Weight capacity_bits = 0;
  Weight word_bits = 0;
  std::int64_t rows = 0;   // rows per bank
  std::int64_t cols = 0;   // bitlines (bits per row)
  std::int64_t banks = 1;
  // Bit cells fabricated beyond capacity_bits: when the row count does not
  // split evenly across banks, every bank is built at the CEILING row
  // count and the excess rows are padding. Invariant (tested):
  //   physical_bits() == capacity_bits + padding_bits  >=  capacity_bits
  // and padding is minimal for the chosen (cols, banks): padding_bits <
  // cols * banks (less than one row per bank).
  std::int64_t padding_bits = 0;

  // Bits actually fabricated — what the area/leakage terms are billed on.
  std::int64_t physical_bits() const { return rows * cols * banks; }

  double area_lambda2 = 0;
  double width_lambda = 0;
  double height_lambda = 0;

  double leakage_mw = 0;
  double read_power_mw = 0;
  double write_power_mw = 0;
  double read_bw_gbps = 0;
  double write_bw_gbps = 0;
};

// Typed rejection taxonomy for malformed design points, in the style of
// SimErrorCode: library code never aborts on bad input — a design-space
// sweep prices thousands of machine-generated configurations and must be
// able to skip-and-count the invalid ones (src/explore/).
enum class SramError : std::uint8_t {
  kNone = 0,                 // macro synthesized
  kNonPositiveCapacity,      // capacity_bits <= 0
  kNonPositiveWordSize,      // word_bits <= 0
  kCapacityNotWordMultiple,  // capacity_bits % word_bits != 0
};

// Short stable identifier, e.g. "capacity-not-word-multiple". The switch
// has no default case, so extending the enum without the mapping fails the
// -Werror=switch build.
const char* ToString(SramError error);

struct SramSynthesisResult {
  SramError error = SramError::kNone;
  std::string message;  // human-readable rejection; empty when ok()
  SramMacro macro;      // meaningful only when ok()

  bool ok() const { return error == SramError::kNone; }
};

// Synthesizes the macro for a capacity. Never aborts: malformed inputs
// (non-positive capacity or word size, capacity not a word multiple) come
// back as a typed rejection. Deterministic.
SramSynthesisResult TrySynthesizeSram(Weight capacity_bits,
                                      Weight word_bits = 16);

// Precondition-checked convenience wrapper for callers that already
// validated their inputs (asserts in debug builds; returns a
// zero-initialized macro on invalid input in release builds — use
// TrySynthesizeSram when the input is not trusted).
SramMacro SynthesizeSram(Weight capacity_bits, Weight word_bits = 16);

// Round a minimum capacity up to the power-of-two macro actually built
// (standard design practice; final column of Table 1).
Weight PowerOfTwoCapacity(Weight capacity_bits);

// ASCII floorplan of the macro (Fig. 8 stand-in): banks drawn to scale with
// row decoder / column periphery strips.
std::string RenderLayout(const SramMacro& macro, const std::string& label);

}  // namespace wrbpg
