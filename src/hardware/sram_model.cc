#include "hardware/sram_model.h"

#include <algorithm>
#include <cassert>
#include <cstdlib>
#include <limits>
#include <sstream>
#include <string>

#include "util/mathutil.h"

namespace wrbpg {
namespace {

// Calibration constants (TSMC-65-like, lambda units). See header.
constexpr double kBitcellArea = 2.0;      // λ² per bit
constexpr double kRowPeriph = 20.0;       // λ² per row (decoder/driver)
constexpr double kColPeriph = 45.0;       // λ² per column (sense/precharge)
constexpr double kBankOverhead = 300.0;   // λ² per bank (local control)
constexpr double kGlobalOverhead = 400.0; // λ² (global control/IO)

constexpr double kBitcellWidth = 1.3;     // λ per column
constexpr double kBitcellHeight = 1.54;   // λ per row (2.0 λ²/bit)

constexpr double kLeakPerBit = 1.40e-3;   // mW per bit
constexpr double kLeakPerRow = 2.0e-3;    // mW per row of periphery
constexpr double kLeakPerCol = 3.0e-3;    // mW per column of periphery
constexpr double kLeakBase = 0.20;        // mW fixed

constexpr double kReadBase = 0.6;         // mW
constexpr double kReadPerBit = 2.25e-3;   // mW per bit (precharge network)
constexpr double kWriteScale = 1.05;      // writes drive full-swing bitlines

// Access time: decode + bitline + sense, pipelined over a 16-byte window.
constexpr double kCycleBase = 0.33;       // ns
constexpr double kCyclePerRow = 4.0e-4;   // ns per row in a bank
constexpr double kCyclePerCol = 2.0e-4;   // ns per bitline
constexpr double kAccessBytes = 16.0;
constexpr double kWriteBwDerate = 0.95;

constexpr std::int64_t kMaxRowsPerBank = 256;

}  // namespace

Weight PowerOfTwoCapacity(Weight capacity_bits) {
  return NextPowerOfTwo(capacity_bits);
}

SramSynthesisResult TrySynthesizeSram(Weight capacity_bits,
                                      Weight word_bits) {
  SramSynthesisResult result;
  if (capacity_bits <= 0) {
    result.error = SramError::kNonPositiveCapacity;
    result.message = "capacity (" + std::to_string(capacity_bits) +
                     " bits) must be positive";
    return result;
  }
  if (word_bits <= 0) {
    result.error = SramError::kNonPositiveWordSize;
    result.message =
        "word size (" + std::to_string(word_bits) + " bits) must be positive";
    return result;
  }
  if (capacity_bits % word_bits != 0) {
    result.error = SramError::kCapacityNotWordMultiple;
    result.message = "capacity (" + std::to_string(capacity_bits) +
                     " bits) must be a multiple of the word size (" +
                     std::to_string(word_bits) + " bits)";
    return result;
  }

  SramMacro& macro = result.macro;
  macro.capacity_bits = capacity_bits;
  macro.word_bits = word_bits;

  // Pick the column count (word-width multiple, power-of-two mux) that makes
  // the array squarest, then bank tall arrays.
  std::int64_t best_cols = word_bits;
  std::int64_t best_gap = std::numeric_limits<std::int64_t>::max();
  for (std::int64_t mux = 1;; mux *= 2) {
    const std::int64_t cols = word_bits * mux;
    if (cols > capacity_bits) break;
    if (capacity_bits % cols != 0) continue;
    const std::int64_t rows = capacity_bits / cols;
    const std::int64_t gap = std::llabs(rows - cols);
    if (gap < best_gap) {
      best_gap = gap;
      best_cols = cols;
    }
  }
  macro.cols = best_cols;
  const std::int64_t total_rows = capacity_bits / macro.cols;
  // Bank by doubling until a bank fits, with CEILING division: an odd row
  // count must round up, not truncate — truncation silently dropped rows
  // (257 rows -> 2 banks x 128 rows covers only 4096 of 4112 bits),
  // understating area and leakage. Every bank is built at the ceiling row
  // count; the excess over capacity is accounted as padding_bits.
  macro.banks = 1;
  while ((total_rows + macro.banks - 1) / macro.banks > kMaxRowsPerBank) {
    macro.banks *= 2;
  }
  macro.rows = (total_rows + macro.banks - 1) / macro.banks;
  macro.padding_bits = macro.rows * macro.cols * macro.banks - capacity_bits;

  // Physical bit count: padding rows are fabricated cells — they cost area
  // and leak like any other cell, so every per-bit term bills them.
  const double bits = static_cast<double>(macro.physical_bits());
  const double rows_total =
      static_cast<double>(macro.rows) * static_cast<double>(macro.banks);
  const double cols_d = static_cast<double>(macro.cols);

  macro.area_lambda2 = kBitcellArea * bits + kRowPeriph * rows_total +
                       kColPeriph * cols_d +
                       kBankOverhead * static_cast<double>(macro.banks) +
                       kGlobalOverhead;
  macro.width_lambda = kBitcellWidth * cols_d + 24.0;  // + column periphery
  macro.height_lambda =
      kBitcellHeight * rows_total + 16.0 * static_cast<double>(macro.banks);

  macro.leakage_mw = kLeakPerBit * bits + kLeakPerRow * rows_total +
                     kLeakPerCol * cols_d + kLeakBase;
  macro.read_power_mw = kReadBase + kReadPerBit * bits;
  macro.write_power_mw = kWriteScale * macro.read_power_mw;

  const double cycle_ns = kCycleBase +
                          kCyclePerRow * static_cast<double>(macro.rows) +
                          kCyclePerCol * cols_d;
  macro.read_bw_gbps = kAccessBytes / cycle_ns;  // GB/s: bytes per ns
  macro.write_bw_gbps = kWriteBwDerate * macro.read_bw_gbps;
  return result;
}

SramMacro SynthesizeSram(Weight capacity_bits, Weight word_bits) {
  const SramSynthesisResult result =
      TrySynthesizeSram(capacity_bits, word_bits);
  assert(result.ok() && "SynthesizeSram precondition violated; use "
                        "TrySynthesizeSram for untrusted input");
  return result.macro;  // zero-initialized macro on invalid release input
}

const char* ToString(SramError error) {
  switch (error) {
    case SramError::kNone: return "none";
    case SramError::kNonPositiveCapacity: return "non-positive-capacity";
    case SramError::kNonPositiveWordSize: return "non-positive-word-size";
    case SramError::kCapacityNotWordMultiple:
      return "capacity-not-word-multiple";
  }
  return "unknown";
}

std::string RenderLayout(const SramMacro& macro, const std::string& label) {
  std::ostringstream out;
  // Scale: one character column ~ 8 λ wide, one row ~ 24 λ tall, with
  // floors so tiny macros remain visible.
  const int w = std::max(6, static_cast<int>(macro.width_lambda / 8.0));
  const int bank_h =
      std::max(2, static_cast<int>(static_cast<double>(macro.rows) *
                                   kBitcellHeight / 24.0));
  out << label << "  (" << macro.capacity_bits << " bits, " << macro.banks
      << (macro.banks == 1 ? " bank, " : " banks, ") << macro.rows << "x"
      << macro.cols << " per bank, " << static_cast<long long>(macro.area_lambda2)
      << " lambda^2)\n";
  const std::string border = "+" + std::string(static_cast<std::size_t>(w), '-') + "+\n";
  out << border;
  for (std::int64_t b = 0; b < macro.banks; ++b) {
    for (int r = 0; r < bank_h; ++r) {
      out << "|";
      for (int c = 0; c < w; ++c) {
        // Left strip: row decoder; body: bit-cell array.
        out << (c < 2 ? ':' : '#');
      }
      out << "|\n";
    }
    // Column periphery strip under each bank.
    out << "|" << std::string(static_cast<std::size_t>(w), '=') << "|\n";
  }
  out << border;
  return out.str();
}

}  // namespace wrbpg
