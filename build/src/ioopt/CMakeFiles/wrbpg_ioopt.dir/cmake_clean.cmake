file(REMOVE_RECURSE
  "CMakeFiles/wrbpg_ioopt.dir/ioopt_bounds.cc.o"
  "CMakeFiles/wrbpg_ioopt.dir/ioopt_bounds.cc.o.d"
  "libwrbpg_ioopt.a"
  "libwrbpg_ioopt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wrbpg_ioopt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
