file(REMOVE_RECURSE
  "libwrbpg_ioopt.a"
)
