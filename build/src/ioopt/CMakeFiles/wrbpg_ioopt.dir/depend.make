# Empty dependencies file for wrbpg_ioopt.
# This may be replaced when dependencies are built.
