file(REMOVE_RECURSE
  "libwrbpg_hardware.a"
)
