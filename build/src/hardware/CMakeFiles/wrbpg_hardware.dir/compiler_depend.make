# Empty compiler generated dependencies file for wrbpg_hardware.
# This may be replaced when dependencies are built.
