file(REMOVE_RECURSE
  "CMakeFiles/wrbpg_hardware.dir/energy_model.cc.o"
  "CMakeFiles/wrbpg_hardware.dir/energy_model.cc.o.d"
  "CMakeFiles/wrbpg_hardware.dir/sram_model.cc.o"
  "CMakeFiles/wrbpg_hardware.dir/sram_model.cc.o.d"
  "libwrbpg_hardware.a"
  "libwrbpg_hardware.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wrbpg_hardware.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
