
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hardware/energy_model.cc" "src/hardware/CMakeFiles/wrbpg_hardware.dir/energy_model.cc.o" "gcc" "src/hardware/CMakeFiles/wrbpg_hardware.dir/energy_model.cc.o.d"
  "/root/repo/src/hardware/sram_model.cc" "src/hardware/CMakeFiles/wrbpg_hardware.dir/sram_model.cc.o" "gcc" "src/hardware/CMakeFiles/wrbpg_hardware.dir/sram_model.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/wrbpg_core.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/wrbpg_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
