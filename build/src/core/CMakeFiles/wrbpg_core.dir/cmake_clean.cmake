file(REMOVE_RECURSE
  "CMakeFiles/wrbpg_core.dir/analysis.cc.o"
  "CMakeFiles/wrbpg_core.dir/analysis.cc.o.d"
  "CMakeFiles/wrbpg_core.dir/compose.cc.o"
  "CMakeFiles/wrbpg_core.dir/compose.cc.o.d"
  "CMakeFiles/wrbpg_core.dir/graph_builder.cc.o"
  "CMakeFiles/wrbpg_core.dir/graph_builder.cc.o.d"
  "CMakeFiles/wrbpg_core.dir/move.cc.o"
  "CMakeFiles/wrbpg_core.dir/move.cc.o.d"
  "CMakeFiles/wrbpg_core.dir/schedule.cc.o"
  "CMakeFiles/wrbpg_core.dir/schedule.cc.o.d"
  "CMakeFiles/wrbpg_core.dir/serialize.cc.o"
  "CMakeFiles/wrbpg_core.dir/serialize.cc.o.d"
  "CMakeFiles/wrbpg_core.dir/simulator.cc.o"
  "CMakeFiles/wrbpg_core.dir/simulator.cc.o.d"
  "CMakeFiles/wrbpg_core.dir/trace.cc.o"
  "CMakeFiles/wrbpg_core.dir/trace.cc.o.d"
  "libwrbpg_core.a"
  "libwrbpg_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wrbpg_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
