file(REMOVE_RECURSE
  "libwrbpg_core.a"
)
