
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/analysis.cc" "src/core/CMakeFiles/wrbpg_core.dir/analysis.cc.o" "gcc" "src/core/CMakeFiles/wrbpg_core.dir/analysis.cc.o.d"
  "/root/repo/src/core/compose.cc" "src/core/CMakeFiles/wrbpg_core.dir/compose.cc.o" "gcc" "src/core/CMakeFiles/wrbpg_core.dir/compose.cc.o.d"
  "/root/repo/src/core/graph_builder.cc" "src/core/CMakeFiles/wrbpg_core.dir/graph_builder.cc.o" "gcc" "src/core/CMakeFiles/wrbpg_core.dir/graph_builder.cc.o.d"
  "/root/repo/src/core/move.cc" "src/core/CMakeFiles/wrbpg_core.dir/move.cc.o" "gcc" "src/core/CMakeFiles/wrbpg_core.dir/move.cc.o.d"
  "/root/repo/src/core/schedule.cc" "src/core/CMakeFiles/wrbpg_core.dir/schedule.cc.o" "gcc" "src/core/CMakeFiles/wrbpg_core.dir/schedule.cc.o.d"
  "/root/repo/src/core/serialize.cc" "src/core/CMakeFiles/wrbpg_core.dir/serialize.cc.o" "gcc" "src/core/CMakeFiles/wrbpg_core.dir/serialize.cc.o.d"
  "/root/repo/src/core/simulator.cc" "src/core/CMakeFiles/wrbpg_core.dir/simulator.cc.o" "gcc" "src/core/CMakeFiles/wrbpg_core.dir/simulator.cc.o.d"
  "/root/repo/src/core/trace.cc" "src/core/CMakeFiles/wrbpg_core.dir/trace.cc.o" "gcc" "src/core/CMakeFiles/wrbpg_core.dir/trace.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/wrbpg_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
