# Empty dependencies file for wrbpg_core.
# This may be replaced when dependencies are built.
