file(REMOVE_RECURSE
  "CMakeFiles/wrbpg_schedulers.dir/banded_mvm.cc.o"
  "CMakeFiles/wrbpg_schedulers.dir/banded_mvm.cc.o.d"
  "CMakeFiles/wrbpg_schedulers.dir/belady.cc.o"
  "CMakeFiles/wrbpg_schedulers.dir/belady.cc.o.d"
  "CMakeFiles/wrbpg_schedulers.dir/brute_force.cc.o"
  "CMakeFiles/wrbpg_schedulers.dir/brute_force.cc.o.d"
  "CMakeFiles/wrbpg_schedulers.dir/dwt_optimal.cc.o"
  "CMakeFiles/wrbpg_schedulers.dir/dwt_optimal.cc.o.d"
  "CMakeFiles/wrbpg_schedulers.dir/greedy_topo.cc.o"
  "CMakeFiles/wrbpg_schedulers.dir/greedy_topo.cc.o.d"
  "CMakeFiles/wrbpg_schedulers.dir/kary_tree.cc.o"
  "CMakeFiles/wrbpg_schedulers.dir/kary_tree.cc.o.d"
  "CMakeFiles/wrbpg_schedulers.dir/layer_by_layer.cc.o"
  "CMakeFiles/wrbpg_schedulers.dir/layer_by_layer.cc.o.d"
  "CMakeFiles/wrbpg_schedulers.dir/memory_state.cc.o"
  "CMakeFiles/wrbpg_schedulers.dir/memory_state.cc.o.d"
  "CMakeFiles/wrbpg_schedulers.dir/mmm_tiling.cc.o"
  "CMakeFiles/wrbpg_schedulers.dir/mmm_tiling.cc.o.d"
  "CMakeFiles/wrbpg_schedulers.dir/mvm_memory_state.cc.o"
  "CMakeFiles/wrbpg_schedulers.dir/mvm_memory_state.cc.o.d"
  "CMakeFiles/wrbpg_schedulers.dir/mvm_tiling.cc.o"
  "CMakeFiles/wrbpg_schedulers.dir/mvm_tiling.cc.o.d"
  "libwrbpg_schedulers.a"
  "libwrbpg_schedulers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wrbpg_schedulers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
