file(REMOVE_RECURSE
  "libwrbpg_schedulers.a"
)
