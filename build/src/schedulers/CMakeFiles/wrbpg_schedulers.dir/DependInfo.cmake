
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/schedulers/banded_mvm.cc" "src/schedulers/CMakeFiles/wrbpg_schedulers.dir/banded_mvm.cc.o" "gcc" "src/schedulers/CMakeFiles/wrbpg_schedulers.dir/banded_mvm.cc.o.d"
  "/root/repo/src/schedulers/belady.cc" "src/schedulers/CMakeFiles/wrbpg_schedulers.dir/belady.cc.o" "gcc" "src/schedulers/CMakeFiles/wrbpg_schedulers.dir/belady.cc.o.d"
  "/root/repo/src/schedulers/brute_force.cc" "src/schedulers/CMakeFiles/wrbpg_schedulers.dir/brute_force.cc.o" "gcc" "src/schedulers/CMakeFiles/wrbpg_schedulers.dir/brute_force.cc.o.d"
  "/root/repo/src/schedulers/dwt_optimal.cc" "src/schedulers/CMakeFiles/wrbpg_schedulers.dir/dwt_optimal.cc.o" "gcc" "src/schedulers/CMakeFiles/wrbpg_schedulers.dir/dwt_optimal.cc.o.d"
  "/root/repo/src/schedulers/greedy_topo.cc" "src/schedulers/CMakeFiles/wrbpg_schedulers.dir/greedy_topo.cc.o" "gcc" "src/schedulers/CMakeFiles/wrbpg_schedulers.dir/greedy_topo.cc.o.d"
  "/root/repo/src/schedulers/kary_tree.cc" "src/schedulers/CMakeFiles/wrbpg_schedulers.dir/kary_tree.cc.o" "gcc" "src/schedulers/CMakeFiles/wrbpg_schedulers.dir/kary_tree.cc.o.d"
  "/root/repo/src/schedulers/layer_by_layer.cc" "src/schedulers/CMakeFiles/wrbpg_schedulers.dir/layer_by_layer.cc.o" "gcc" "src/schedulers/CMakeFiles/wrbpg_schedulers.dir/layer_by_layer.cc.o.d"
  "/root/repo/src/schedulers/memory_state.cc" "src/schedulers/CMakeFiles/wrbpg_schedulers.dir/memory_state.cc.o" "gcc" "src/schedulers/CMakeFiles/wrbpg_schedulers.dir/memory_state.cc.o.d"
  "/root/repo/src/schedulers/mmm_tiling.cc" "src/schedulers/CMakeFiles/wrbpg_schedulers.dir/mmm_tiling.cc.o" "gcc" "src/schedulers/CMakeFiles/wrbpg_schedulers.dir/mmm_tiling.cc.o.d"
  "/root/repo/src/schedulers/mvm_memory_state.cc" "src/schedulers/CMakeFiles/wrbpg_schedulers.dir/mvm_memory_state.cc.o" "gcc" "src/schedulers/CMakeFiles/wrbpg_schedulers.dir/mvm_memory_state.cc.o.d"
  "/root/repo/src/schedulers/mvm_tiling.cc" "src/schedulers/CMakeFiles/wrbpg_schedulers.dir/mvm_tiling.cc.o" "gcc" "src/schedulers/CMakeFiles/wrbpg_schedulers.dir/mvm_tiling.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/wrbpg_core.dir/DependInfo.cmake"
  "/root/repo/build/src/dataflows/CMakeFiles/wrbpg_dataflows.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/wrbpg_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
