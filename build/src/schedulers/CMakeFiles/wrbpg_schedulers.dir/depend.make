# Empty dependencies file for wrbpg_schedulers.
# This may be replaced when dependencies are built.
