# Empty compiler generated dependencies file for wrbpg_schedulers.
# This may be replaced when dependencies are built.
