# Empty dependencies file for wrbpg_dataflows.
# This may be replaced when dependencies are built.
