
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dataflows/banded_mvm_graph.cc" "src/dataflows/CMakeFiles/wrbpg_dataflows.dir/banded_mvm_graph.cc.o" "gcc" "src/dataflows/CMakeFiles/wrbpg_dataflows.dir/banded_mvm_graph.cc.o.d"
  "/root/repo/src/dataflows/butterfly_graph.cc" "src/dataflows/CMakeFiles/wrbpg_dataflows.dir/butterfly_graph.cc.o" "gcc" "src/dataflows/CMakeFiles/wrbpg_dataflows.dir/butterfly_graph.cc.o.d"
  "/root/repo/src/dataflows/dwt_graph.cc" "src/dataflows/CMakeFiles/wrbpg_dataflows.dir/dwt_graph.cc.o" "gcc" "src/dataflows/CMakeFiles/wrbpg_dataflows.dir/dwt_graph.cc.o.d"
  "/root/repo/src/dataflows/mmm_graph.cc" "src/dataflows/CMakeFiles/wrbpg_dataflows.dir/mmm_graph.cc.o" "gcc" "src/dataflows/CMakeFiles/wrbpg_dataflows.dir/mmm_graph.cc.o.d"
  "/root/repo/src/dataflows/mvm_graph.cc" "src/dataflows/CMakeFiles/wrbpg_dataflows.dir/mvm_graph.cc.o" "gcc" "src/dataflows/CMakeFiles/wrbpg_dataflows.dir/mvm_graph.cc.o.d"
  "/root/repo/src/dataflows/random_dag.cc" "src/dataflows/CMakeFiles/wrbpg_dataflows.dir/random_dag.cc.o" "gcc" "src/dataflows/CMakeFiles/wrbpg_dataflows.dir/random_dag.cc.o.d"
  "/root/repo/src/dataflows/tree_graph.cc" "src/dataflows/CMakeFiles/wrbpg_dataflows.dir/tree_graph.cc.o" "gcc" "src/dataflows/CMakeFiles/wrbpg_dataflows.dir/tree_graph.cc.o.d"
  "/root/repo/src/dataflows/wavelet_graph.cc" "src/dataflows/CMakeFiles/wrbpg_dataflows.dir/wavelet_graph.cc.o" "gcc" "src/dataflows/CMakeFiles/wrbpg_dataflows.dir/wavelet_graph.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/wrbpg_core.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/wrbpg_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
