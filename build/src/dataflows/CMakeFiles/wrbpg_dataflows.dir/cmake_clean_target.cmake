file(REMOVE_RECURSE
  "libwrbpg_dataflows.a"
)
