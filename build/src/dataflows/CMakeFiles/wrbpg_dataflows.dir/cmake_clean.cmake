file(REMOVE_RECURSE
  "CMakeFiles/wrbpg_dataflows.dir/banded_mvm_graph.cc.o"
  "CMakeFiles/wrbpg_dataflows.dir/banded_mvm_graph.cc.o.d"
  "CMakeFiles/wrbpg_dataflows.dir/butterfly_graph.cc.o"
  "CMakeFiles/wrbpg_dataflows.dir/butterfly_graph.cc.o.d"
  "CMakeFiles/wrbpg_dataflows.dir/dwt_graph.cc.o"
  "CMakeFiles/wrbpg_dataflows.dir/dwt_graph.cc.o.d"
  "CMakeFiles/wrbpg_dataflows.dir/mmm_graph.cc.o"
  "CMakeFiles/wrbpg_dataflows.dir/mmm_graph.cc.o.d"
  "CMakeFiles/wrbpg_dataflows.dir/mvm_graph.cc.o"
  "CMakeFiles/wrbpg_dataflows.dir/mvm_graph.cc.o.d"
  "CMakeFiles/wrbpg_dataflows.dir/random_dag.cc.o"
  "CMakeFiles/wrbpg_dataflows.dir/random_dag.cc.o.d"
  "CMakeFiles/wrbpg_dataflows.dir/tree_graph.cc.o"
  "CMakeFiles/wrbpg_dataflows.dir/tree_graph.cc.o.d"
  "CMakeFiles/wrbpg_dataflows.dir/wavelet_graph.cc.o"
  "CMakeFiles/wrbpg_dataflows.dir/wavelet_graph.cc.o.d"
  "libwrbpg_dataflows.a"
  "libwrbpg_dataflows.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wrbpg_dataflows.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
