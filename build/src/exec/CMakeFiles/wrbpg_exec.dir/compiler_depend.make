# Empty compiler generated dependencies file for wrbpg_exec.
# This may be replaced when dependencies are built.
