file(REMOVE_RECURSE
  "libwrbpg_exec.a"
)
