file(REMOVE_RECURSE
  "CMakeFiles/wrbpg_exec.dir/executor.cc.o"
  "CMakeFiles/wrbpg_exec.dir/executor.cc.o.d"
  "CMakeFiles/wrbpg_exec.dir/extended_kernels.cc.o"
  "CMakeFiles/wrbpg_exec.dir/extended_kernels.cc.o.d"
  "CMakeFiles/wrbpg_exec.dir/reference_kernels.cc.o"
  "CMakeFiles/wrbpg_exec.dir/reference_kernels.cc.o.d"
  "libwrbpg_exec.a"
  "libwrbpg_exec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wrbpg_exec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
