# Empty compiler generated dependencies file for wrbpg_util.
# This may be replaced when dependencies are built.
