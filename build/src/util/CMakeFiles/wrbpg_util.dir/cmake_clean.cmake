file(REMOVE_RECURSE
  "CMakeFiles/wrbpg_util.dir/cli.cc.o"
  "CMakeFiles/wrbpg_util.dir/cli.cc.o.d"
  "CMakeFiles/wrbpg_util.dir/csv.cc.o"
  "CMakeFiles/wrbpg_util.dir/csv.cc.o.d"
  "CMakeFiles/wrbpg_util.dir/rng.cc.o"
  "CMakeFiles/wrbpg_util.dir/rng.cc.o.d"
  "CMakeFiles/wrbpg_util.dir/table.cc.o"
  "CMakeFiles/wrbpg_util.dir/table.cc.o.d"
  "CMakeFiles/wrbpg_util.dir/thread_pool.cc.o"
  "CMakeFiles/wrbpg_util.dir/thread_pool.cc.o.d"
  "libwrbpg_util.a"
  "libwrbpg_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wrbpg_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
