file(REMOVE_RECURSE
  "libwrbpg_util.a"
)
