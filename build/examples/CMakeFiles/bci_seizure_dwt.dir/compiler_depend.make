# Empty compiler generated dependencies file for bci_seizure_dwt.
# This may be replaced when dependencies are built.
