file(REMOVE_RECURSE
  "CMakeFiles/bci_seizure_dwt.dir/bci_seizure_dwt.cpp.o"
  "CMakeFiles/bci_seizure_dwt.dir/bci_seizure_dwt.cpp.o.d"
  "bci_seizure_dwt"
  "bci_seizure_dwt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bci_seizure_dwt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
