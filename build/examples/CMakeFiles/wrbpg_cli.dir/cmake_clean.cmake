file(REMOVE_RECURSE
  "CMakeFiles/wrbpg_cli.dir/wrbpg_cli.cpp.o"
  "CMakeFiles/wrbpg_cli.dir/wrbpg_cli.cpp.o.d"
  "wrbpg_cli"
  "wrbpg_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wrbpg_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
