# Empty dependencies file for wrbpg_cli.
# This may be replaced when dependencies are built.
