file(REMOVE_RECURSE
  "CMakeFiles/bci_decode_mvm.dir/bci_decode_mvm.cpp.o"
  "CMakeFiles/bci_decode_mvm.dir/bci_decode_mvm.cpp.o.d"
  "bci_decode_mvm"
  "bci_decode_mvm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bci_decode_mvm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
