# Empty dependencies file for bci_decode_mvm.
# This may be replaced when dependencies are built.
