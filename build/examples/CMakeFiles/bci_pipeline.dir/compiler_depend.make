# Empty compiler generated dependencies file for bci_pipeline.
# This may be replaced when dependencies are built.
