file(REMOVE_RECURSE
  "CMakeFiles/bci_pipeline.dir/bci_pipeline.cpp.o"
  "CMakeFiles/bci_pipeline.dir/bci_pipeline.cpp.o.d"
  "bci_pipeline"
  "bci_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bci_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
