# Empty compiler generated dependencies file for memory_designer.
# This may be replaced when dependencies are built.
