file(REMOVE_RECURSE
  "CMakeFiles/memory_designer.dir/memory_designer.cpp.o"
  "CMakeFiles/memory_designer.dir/memory_designer.cpp.o.d"
  "memory_designer"
  "memory_designer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memory_designer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
