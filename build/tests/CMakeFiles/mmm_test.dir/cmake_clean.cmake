file(REMOVE_RECURSE
  "CMakeFiles/mmm_test.dir/mmm_test.cc.o"
  "CMakeFiles/mmm_test.dir/mmm_test.cc.o.d"
  "mmm_test"
  "mmm_test.pdb"
  "mmm_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mmm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
