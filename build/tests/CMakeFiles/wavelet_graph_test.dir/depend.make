# Empty dependencies file for wavelet_graph_test.
# This may be replaced when dependencies are built.
