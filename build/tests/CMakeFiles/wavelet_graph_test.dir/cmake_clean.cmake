file(REMOVE_RECURSE
  "CMakeFiles/wavelet_graph_test.dir/wavelet_graph_test.cc.o"
  "CMakeFiles/wavelet_graph_test.dir/wavelet_graph_test.cc.o.d"
  "wavelet_graph_test"
  "wavelet_graph_test.pdb"
  "wavelet_graph_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wavelet_graph_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
