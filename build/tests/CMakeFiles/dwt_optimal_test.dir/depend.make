# Empty dependencies file for dwt_optimal_test.
# This may be replaced when dependencies are built.
