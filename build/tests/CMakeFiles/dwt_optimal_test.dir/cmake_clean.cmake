file(REMOVE_RECURSE
  "CMakeFiles/dwt_optimal_test.dir/dwt_optimal_test.cc.o"
  "CMakeFiles/dwt_optimal_test.dir/dwt_optimal_test.cc.o.d"
  "dwt_optimal_test"
  "dwt_optimal_test.pdb"
  "dwt_optimal_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dwt_optimal_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
