file(REMOVE_RECURSE
  "CMakeFiles/layer_by_layer_test.dir/layer_by_layer_test.cc.o"
  "CMakeFiles/layer_by_layer_test.dir/layer_by_layer_test.cc.o.d"
  "layer_by_layer_test"
  "layer_by_layer_test.pdb"
  "layer_by_layer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/layer_by_layer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
