file(REMOVE_RECURSE
  "CMakeFiles/ioopt_test.dir/ioopt_test.cc.o"
  "CMakeFiles/ioopt_test.dir/ioopt_test.cc.o.d"
  "ioopt_test"
  "ioopt_test.pdb"
  "ioopt_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ioopt_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
