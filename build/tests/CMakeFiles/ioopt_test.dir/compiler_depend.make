# Empty compiler generated dependencies file for ioopt_test.
# This may be replaced when dependencies are built.
