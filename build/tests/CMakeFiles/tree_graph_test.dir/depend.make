# Empty dependencies file for tree_graph_test.
# This may be replaced when dependencies are built.
