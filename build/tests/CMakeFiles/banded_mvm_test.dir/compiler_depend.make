# Empty compiler generated dependencies file for banded_mvm_test.
# This may be replaced when dependencies are built.
