file(REMOVE_RECURSE
  "CMakeFiles/banded_mvm_test.dir/banded_mvm_test.cc.o"
  "CMakeFiles/banded_mvm_test.dir/banded_mvm_test.cc.o.d"
  "banded_mvm_test"
  "banded_mvm_test.pdb"
  "banded_mvm_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/banded_mvm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
