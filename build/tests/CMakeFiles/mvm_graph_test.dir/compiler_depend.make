# Empty compiler generated dependencies file for mvm_graph_test.
# This may be replaced when dependencies are built.
