file(REMOVE_RECURSE
  "CMakeFiles/mvm_graph_test.dir/mvm_graph_test.cc.o"
  "CMakeFiles/mvm_graph_test.dir/mvm_graph_test.cc.o.d"
  "mvm_graph_test"
  "mvm_graph_test.pdb"
  "mvm_graph_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mvm_graph_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
