file(REMOVE_RECURSE
  "CMakeFiles/greedy_topo_test.dir/greedy_topo_test.cc.o"
  "CMakeFiles/greedy_topo_test.dir/greedy_topo_test.cc.o.d"
  "greedy_topo_test"
  "greedy_topo_test.pdb"
  "greedy_topo_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/greedy_topo_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
