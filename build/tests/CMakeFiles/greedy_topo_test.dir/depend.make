# Empty dependencies file for greedy_topo_test.
# This may be replaced when dependencies are built.
