file(REMOVE_RECURSE
  "CMakeFiles/mvm_memory_state_test.dir/mvm_memory_state_test.cc.o"
  "CMakeFiles/mvm_memory_state_test.dir/mvm_memory_state_test.cc.o.d"
  "mvm_memory_state_test"
  "mvm_memory_state_test.pdb"
  "mvm_memory_state_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mvm_memory_state_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
