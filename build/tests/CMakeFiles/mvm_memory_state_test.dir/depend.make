# Empty dependencies file for mvm_memory_state_test.
# This may be replaced when dependencies are built.
