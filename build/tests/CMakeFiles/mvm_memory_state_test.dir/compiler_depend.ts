# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for mvm_memory_state_test.
