# Empty compiler generated dependencies file for dwt_graph_test.
# This may be replaced when dependencies are built.
