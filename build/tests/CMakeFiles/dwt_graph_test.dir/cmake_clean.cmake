file(REMOVE_RECURSE
  "CMakeFiles/dwt_graph_test.dir/dwt_graph_test.cc.o"
  "CMakeFiles/dwt_graph_test.dir/dwt_graph_test.cc.o.d"
  "dwt_graph_test"
  "dwt_graph_test.pdb"
  "dwt_graph_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dwt_graph_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
