# Empty compiler generated dependencies file for mvm_tiling_test.
# This may be replaced when dependencies are built.
