file(REMOVE_RECURSE
  "CMakeFiles/mvm_tiling_test.dir/mvm_tiling_test.cc.o"
  "CMakeFiles/mvm_tiling_test.dir/mvm_tiling_test.cc.o.d"
  "mvm_tiling_test"
  "mvm_tiling_test.pdb"
  "mvm_tiling_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mvm_tiling_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
