# Empty compiler generated dependencies file for kary_tree_test.
# This may be replaced when dependencies are built.
