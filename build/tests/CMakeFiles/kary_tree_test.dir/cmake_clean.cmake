file(REMOVE_RECURSE
  "CMakeFiles/kary_tree_test.dir/kary_tree_test.cc.o"
  "CMakeFiles/kary_tree_test.dir/kary_tree_test.cc.o.d"
  "kary_tree_test"
  "kary_tree_test.pdb"
  "kary_tree_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kary_tree_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
