# Empty compiler generated dependencies file for memory_state_test.
# This may be replaced when dependencies are built.
