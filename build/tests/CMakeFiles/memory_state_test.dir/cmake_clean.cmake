file(REMOVE_RECURSE
  "CMakeFiles/memory_state_test.dir/memory_state_test.cc.o"
  "CMakeFiles/memory_state_test.dir/memory_state_test.cc.o.d"
  "memory_state_test"
  "memory_state_test.pdb"
  "memory_state_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memory_state_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
