
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig8_layouts.cc" "bench/CMakeFiles/bench_fig8_layouts.dir/bench_fig8_layouts.cc.o" "gcc" "bench/CMakeFiles/bench_fig8_layouts.dir/bench_fig8_layouts.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/schedulers/CMakeFiles/wrbpg_schedulers.dir/DependInfo.cmake"
  "/root/repo/build/src/dataflows/CMakeFiles/wrbpg_dataflows.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/wrbpg_core.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/wrbpg_util.dir/DependInfo.cmake"
  "/root/repo/build/src/ioopt/CMakeFiles/wrbpg_ioopt.dir/DependInfo.cmake"
  "/root/repo/build/src/hardware/CMakeFiles/wrbpg_hardware.dir/DependInfo.cmake"
  "/root/repo/build/src/exec/CMakeFiles/wrbpg_exec.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
