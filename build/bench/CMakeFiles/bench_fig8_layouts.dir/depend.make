# Empty dependencies file for bench_fig8_layouts.
# This may be replaced when dependencies are built.
