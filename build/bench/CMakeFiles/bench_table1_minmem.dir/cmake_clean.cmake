file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_minmem.dir/bench_table1_minmem.cc.o"
  "CMakeFiles/bench_table1_minmem.dir/bench_table1_minmem.cc.o.d"
  "bench_table1_minmem"
  "bench_table1_minmem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_minmem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
