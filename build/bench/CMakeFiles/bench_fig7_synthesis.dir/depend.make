# Empty dependencies file for bench_fig7_synthesis.
# This may be replaced when dependencies are built.
