file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_synthesis.dir/bench_fig7_synthesis.cc.o"
  "CMakeFiles/bench_fig7_synthesis.dir/bench_fig7_synthesis.cc.o.d"
  "bench_fig7_synthesis"
  "bench_fig7_synthesis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_synthesis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
