# Empty compiler generated dependencies file for bench_fig6_minmem.
# This may be replaced when dependencies are built.
