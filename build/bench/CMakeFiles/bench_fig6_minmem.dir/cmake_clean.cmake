file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_minmem.dir/bench_fig6_minmem.cc.o"
  "CMakeFiles/bench_fig6_minmem.dir/bench_fig6_minmem.cc.o.d"
  "bench_fig6_minmem"
  "bench_fig6_minmem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_minmem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
