# Empty dependencies file for bench_fig5_io.
# This may be replaced when dependencies are built.
