file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_io.dir/bench_fig5_io.cc.o"
  "CMakeFiles/bench_fig5_io.dir/bench_fig5_io.cc.o.d"
  "bench_fig5_io"
  "bench_fig5_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
